"""Block-Streaming CSR (BS-CSR) — the paper's sparse matrix format.

Every 512-bit packet is an independent CSR fragment (Section III-B):

* ``B`` *lanes*, each holding a column index (``idx``) and a
  reduced-precision value (``val``);
* a ``ptr`` array of ``B`` entries recording the *cumulative in-packet
  non-zero count at every row ending* (strictly increasing; 0 pads unused
  slots) — 4 bits per entry for B = 15 instead of 32-bit COO row ids;
* one ``new_row`` bit: 1 when the packet's first lane starts a new row,
  0 when it continues the previous packet's unfinished row.

Row ids are never stored: a streaming consumer counts row endings.  Rows may
span any number of packets; rows with no stored entries get one placeholder
lane with value 0 so the row count stays consistent ("missing rows are
handled with placeholder 0 values").  At most ``rows_per_packet`` (the
paper's ``r``) rows may *end* in one packet — the hardware tracks only ``r``
per-packet row results; the encoder closes a packet early (padding the tail
with zero lanes) when the budget is exhausted.

Encoding conventions chosen where the paper is ambiguous (see DESIGN.md §5):
a row ending exactly at the last occupied lane *does* get its ``ptr`` entry;
the following packet then carries ``new_row = 1``.  A decoder therefore
always emits rows at ``ptr`` boundaries and uses ``new_row`` only to decide
whether to merge the carried partial sum into the first segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arithmetic.codecs import ValueCodec
from repro.errors import ConfigurationError, FormatError, PacketDecodeError
from repro.formats.bitpack import pack_packet, unpack_packet
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.layout import PacketLayout, index_field_bits

__all__ = [
    "BSCSRStream",
    "BSCSRMatrix",
    "encode_bscsr",
    "encode_bscsr_reference",
    "decode_to_coo",
    "decode_to_csr",
    "lane_row_ids",
    "validate_stream",
]


@dataclass
class BSCSRStream:
    """A BS-CSR packet stream for one matrix (or one matrix partition).

    The stream is stored as structure-of-arrays over packets (the "logical"
    view); :meth:`to_bytes`/:meth:`from_bytes` give the bit-exact 512-bit
    wire representation.

    Attributes
    ----------
    layout:
        Packet layout (lane count and field widths).
    codec:
        Value codec mapping stored raw codes to real values.
    n_rows, n_cols:
        Logical shape of the encoded matrix.
    nnz:
        Number of genuine non-zero entries (placeholder lanes excluded).
    new_row:
        ``bool[n_packets]`` — the per-packet ``new_row`` bit.
    ptr:
        ``uint16[n_packets, lanes]`` — cumulative counts at row endings,
        zero-padded.
    idx:
        ``int64[n_packets, lanes]`` — column indices (0 in padding lanes).
    val_raw:
        ``uint64[n_packets, lanes]`` — encoded values (0 in padding lanes).
    rows_per_packet:
        The ``r`` constraint the stream was encoded with.
    """

    layout: PacketLayout
    codec: ValueCodec
    n_rows: int
    n_cols: int
    nnz: int
    new_row: np.ndarray
    ptr: np.ndarray
    idx: np.ndarray
    val_raw: np.ndarray
    rows_per_packet: int = field(default=0)

    def __post_init__(self) -> None:
        self.new_row = np.ascontiguousarray(self.new_row, dtype=bool)
        self.ptr = np.ascontiguousarray(self.ptr, dtype=np.uint16)
        self.idx = np.ascontiguousarray(self.idx, dtype=np.int64)
        self.val_raw = np.ascontiguousarray(self.val_raw, dtype=np.uint64)
        lanes = self.layout.lanes
        for name, arr in (("ptr", self.ptr), ("idx", self.idx), ("val_raw", self.val_raw)):
            if arr.ndim != 2 or arr.shape[1] != lanes:
                raise FormatError(
                    f"{name} must have shape (n_packets, {lanes}), got {arr.shape}"
                )
        if len(self.new_row) != self.n_packets:
            raise FormatError(
                f"new_row length {len(self.new_row)} disagrees with "
                f"{self.n_packets} packets"
            )
        if self.rows_per_packet == 0:
            self.rows_per_packet = lanes

    # ------------------------------------------------------------------ #
    # Size accounting
    # ------------------------------------------------------------------ #
    @property
    def n_packets(self) -> int:
        """Number of packets in the stream."""
        return self.ptr.shape[0]

    @property
    def n_bytes(self) -> int:
        """Bytes transferred over HBM to stream the whole matrix."""
        return self.n_packets * self.layout.packet_bytes

    @property
    def lanes_used(self) -> int:
        """Occupied lanes (non-zeros plus empty-row placeholders)."""
        boundaries = self.ptr.max(axis=1, initial=0).astype(np.int64)
        # Lanes after the last boundary of each packet belong to a spanning
        # row iff the *next* packet continues it (new_row == 0); otherwise
        # they are padding.  Count exactly by walking continuation flags.
        used = 0
        for p in range(self.n_packets):
            tail_continues = p + 1 < self.n_packets and not self.new_row[p + 1]
            if tail_continues:
                used += self.layout.lanes
            else:
                used += int(boundaries[p]) if boundaries[p] else 0
        return used

    def values(self) -> np.ndarray:
        """Decoded per-lane values, shape ``(n_packets, lanes)`` float64."""
        return self.codec.decode(self.val_raw)

    # ------------------------------------------------------------------ #
    # Bit-exact wire representation
    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        """Serialise the stream into concatenated 512-bit packets."""
        if self.codec.bits != self.layout.val_bits:
            raise ConfigurationError(
                f"codec '{self.codec.name}' emits {self.codec.bits}-bit codes but the "
                f"layout stores {self.layout.val_bits}-bit values"
            )
        chunks = []
        for p in range(self.n_packets):
            chunks.append(
                pack_packet(
                    bool(self.new_row[p]),
                    self.ptr[p],
                    self.idx[p],
                    self.val_raw[p],
                    ptr_bits=self.layout.ptr_bits,
                    idx_bits=self.layout.idx_bits,
                    val_bits=self.layout.val_bits,
                    packet_bits=self.layout.packet_bits,
                )
            )
        return b"".join(chunks)

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        layout: PacketLayout,
        codec: ValueCodec,
        n_rows: int,
        n_cols: int,
        nnz: int | None = None,
        rows_per_packet: int = 0,
    ) -> "BSCSRStream":
        """Deserialise a stream previously produced by :meth:`to_bytes`."""
        packet_bytes = layout.packet_bytes
        if len(data) % packet_bytes:
            raise PacketDecodeError(
                f"stream length {len(data)} is not a multiple of the "
                f"{packet_bytes}-byte packet size"
            )
        n_packets = len(data) // packet_bytes
        new_row = np.zeros(n_packets, dtype=bool)
        ptr = np.zeros((n_packets, layout.lanes), dtype=np.uint16)
        idx = np.zeros((n_packets, layout.lanes), dtype=np.int64)
        val_raw = np.zeros((n_packets, layout.lanes), dtype=np.uint64)
        for p in range(n_packets):
            chunk = data[p * packet_bytes : (p + 1) * packet_bytes]
            flag, pv, iv, vv = unpack_packet(
                chunk, layout.lanes, layout.ptr_bits, layout.idx_bits, layout.val_bits
            )
            new_row[p] = flag
            ptr[p] = pv
            idx[p] = iv.astype(np.int64)
            val_raw[p] = vv
        stream = cls(
            layout=layout,
            codec=codec,
            n_rows=n_rows,
            n_cols=n_cols,
            nnz=nnz if nnz is not None else int((codec.decode(val_raw) != 0.0).sum()),
            new_row=new_row,
            ptr=ptr,
            idx=idx,
            val_raw=val_raw,
            rows_per_packet=rows_per_packet,
        )
        validate_stream(stream)
        return stream


def _check_encode_args(
    matrix: CSRMatrix, layout: PacketLayout, rows_per_packet: int | None
) -> int:
    """Shared argument validation for both encoder implementations."""
    if matrix.n_cols > 0 and index_field_bits(matrix.n_cols) > layout.idx_bits:
        raise ConfigurationError(
            f"layout idx field ({layout.idx_bits} bits) cannot index "
            f"{matrix.n_cols} columns"
        )
    lanes = layout.lanes
    if rows_per_packet is None:
        rows_per_packet = lanes
    if not 1 <= rows_per_packet <= lanes:
        raise ConfigurationError(
            f"rows_per_packet must be in [1, {lanes}], got {rows_per_packet}"
        )
    return rows_per_packet


def _lane_starts(eff: np.ndarray, lanes: int, budget: int) -> np.ndarray:
    """Global lane position at which each row's content starts.

    ``eff`` holds every row's occupied lane count (1 for empty rows — the
    placeholder lane).  Positions include early-close padding: when a row
    would *end* inside a packet that already has ``budget`` row endings, the
    encoder closes that packet (the tail lanes become padding) and the row
    restarts at the next packet boundary.

    Fast path: with no padding anywhere, starts are a plain exclusive cumsum.
    The first packet a row touches is the only one where the budget can bind
    (later packets it spills into start with zero endings), so the event
    test is vectorised: ``nb(j)`` — how many earlier rows end in row ``j``'s
    starting packet — falls out of one ``searchsorted`` over the
    non-decreasing ending-packet ids.  Everything before the first event is
    exact; an exact scalar scan finishes the (rare) remainder.
    """
    ends = np.cumsum(eff)
    starts = ends - eff
    n = len(eff)
    if budget >= lanes:
        # A packet ending (>= 1 lane each) can never reach `lanes` endings
        # while lanes remain for another row to end in: the budget is inert.
        return starts

    end_packet = (ends - 1) // lanes
    start_packet = starts // lanes
    fill = starts - start_packet * lanes
    nb = np.arange(n) - np.searchsorted(end_packet, start_packet)
    event = (fill > 0) & (nb >= budget) & (eff <= lanes - fill)
    if not event.any():
        return starts

    # Exact continuation from the first early close: positions before it are
    # untouched, positions after shift by the padding inserted along the way.
    first = int(np.argmax(event))
    pos = int(starts[first])
    count = int(nb[first])
    eff_list = eff.tolist()
    for j in range(first, n):
        length = eff_list[j]
        fill_j = pos % lanes
        if fill_j and count == budget and length <= lanes - fill_j:
            pos += lanes - fill_j  # close the packet early; tail is padding
            count = 0
        starts[j] = pos
        end = pos + length
        if end % lanes == 0:
            count = 0  # the ending lands on the boundary; next packet is fresh
        elif (end - 1) // lanes == pos // lanes:
            count += 1  # ended in the packet it started in
        else:
            count = 1  # spilled into a new packet; its only ending so far
        pos = end
    return starts


def encode_bscsr(
    matrix: CSRMatrix,
    layout: PacketLayout,
    codec: ValueCodec,
    rows_per_packet: int | None = None,
) -> BSCSRStream:
    """Encode a CSR matrix into a BS-CSR packet stream (vectorised).

    Bit-identical to :func:`encode_bscsr_reference` (the original per-packet
    greedy loop, asserted by the encoder-equivalence property suite) but
    built from whole-array segment ops: row lane positions are one cumsum
    (plus a rare exact fixup for early-closed packets), ``ptr``/``idx``/
    ``val`` are scatters into the flat lane stream, and ``new_row`` is a
    boundary-coverage cumsum.

    Parameters
    ----------
    matrix:
        Source matrix (values are quantised through ``codec``).
    layout:
        Packet layout; its ``idx_bits`` must accommodate ``matrix.n_cols``.
    codec:
        Value codec (fixed point, float32, or exact).
    rows_per_packet:
        The hardware's ``r`` limit on rows ending per packet; defaults to
        ``layout.lanes`` (no constraint beyond lane count).
    """
    rows_per_packet = _check_encode_args(matrix, layout, rows_per_packet)
    lanes = layout.lanes
    pad_code = np.uint64(codec.encode(np.zeros(1))[0])
    n_rows = matrix.n_rows

    if n_rows == 0:
        return BSCSRStream(
            layout=layout,
            codec=codec,
            n_rows=0,
            n_cols=matrix.n_cols,
            nnz=0,
            new_row=np.zeros(0, dtype=bool),
            ptr=np.zeros((0, lanes), dtype=np.uint16),
            idx=np.zeros((0, lanes), dtype=np.int64),
            val_raw=np.zeros((0, lanes), dtype=np.uint64),
            rows_per_packet=rows_per_packet,
        )

    lengths = np.diff(matrix.indptr)
    eff = np.where(lengths == 0, 1, lengths)  # empty rows hold one placeholder
    starts = _lane_starts(eff, lanes, rows_per_packet)
    ends = starts + eff
    n_packets = -(-int(ends[-1]) // lanes)

    # One row ending per ptr slot, in row order within each packet.
    last_lane = ends - 1
    end_packet = last_lane // lanes
    rank = np.arange(n_rows) - np.searchsorted(end_packet, end_packet)
    ptr = np.zeros((n_packets, lanes), dtype=np.uint16)
    ptr[end_packet, rank] = (last_lane % lanes + 1).astype(np.uint16)

    # A packet continues its predecessor's row iff some row's lane span
    # crosses the boundary between them: coverage counting via diff+cumsum.
    new_row = np.ones(n_packets, dtype=bool)
    crosses = end_packet > starts // lanes
    if crosses.any():
        delta = np.zeros(n_packets + 1, dtype=np.int64)
        np.add.at(delta, starts[crosses] // lanes + 1, 1)
        np.add.at(delta, end_packet[crosses] + 1, -1)
        new_row[np.cumsum(delta[:-1]) > 0] = False

    # Lane contents: every stored entry lands at its row's start plus its
    # offset inside the row; placeholder and padding lanes keep the defaults.
    idx_flat = np.zeros(n_packets * lanes, dtype=np.int64)
    val_flat = np.full(n_packets * lanes, pad_code, dtype=np.uint64)
    if matrix.nnz:
        within = np.arange(matrix.nnz, dtype=np.int64) - np.repeat(
            matrix.indptr[:-1], lengths
        )
        lane_pos = np.repeat(starts, lengths) + within
        idx_flat[lane_pos] = matrix.indices
        val_flat[lane_pos] = codec.encode(matrix.data)

    return BSCSRStream(
        layout=layout,
        codec=codec,
        n_rows=n_rows,
        n_cols=matrix.n_cols,
        nnz=matrix.nnz,
        new_row=new_row,
        ptr=ptr,
        idx=idx_flat.reshape(n_packets, lanes),
        val_raw=val_flat.reshape(n_packets, lanes),
        rows_per_packet=rows_per_packet,
    )


def encode_bscsr_reference(
    matrix: CSRMatrix,
    layout: PacketLayout,
    codec: ValueCodec,
    rows_per_packet: int | None = None,
) -> BSCSRStream:
    """The original per-packet greedy encoder (hardware-faithful reference).

    Kept as the ground truth the vectorised :func:`encode_bscsr` is tested
    against bit for bit, and as the baseline ``benchmarks/bench_compile.py``
    measures the build speedup from.
    """
    rows_per_packet = _check_encode_args(matrix, layout, rows_per_packet)
    lanes = layout.lanes

    raw_all = codec.encode(matrix.data)
    indices = matrix.indices
    indptr = matrix.indptr
    # Padding and placeholder lanes must carry the codec's representation of
    # 0.0 (the raw code 0 for unsigned/float codecs, the offset for signed
    # ones) so they contribute nothing to any dot product.
    pad_code = np.uint64(codec.encode(np.zeros(1))[0])

    packets_new_row: list[bool] = []
    packets_ptr: list[np.ndarray] = []
    packets_idx: list[np.ndarray] = []
    packets_val: list[np.ndarray] = []

    cur_idx = np.zeros(lanes, dtype=np.int64)
    cur_val = np.full(lanes, pad_code, dtype=np.uint64)
    cur_bounds: list[int] = []
    cur_fill = 0
    cur_flag = True  # first packet always starts a new row

    def flush(next_flag: bool) -> None:
        nonlocal cur_idx, cur_val, cur_bounds, cur_fill, cur_flag
        ptr_arr = np.zeros(lanes, dtype=np.uint16)
        ptr_arr[: len(cur_bounds)] = cur_bounds
        packets_new_row.append(cur_flag)
        packets_ptr.append(ptr_arr)
        packets_idx.append(cur_idx)
        packets_val.append(cur_val)
        cur_idx = np.zeros(lanes, dtype=np.int64)
        cur_val = np.full(lanes, pad_code, dtype=np.uint64)
        cur_bounds = []
        cur_fill = 0
        cur_flag = next_flag

    for row in range(matrix.n_rows):
        start, stop = int(indptr[row]), int(indptr[row + 1])
        length = stop - start
        if length == 0:
            # Placeholder lane: one zero entry that ends the (empty) row.
            if cur_fill == lanes or len(cur_bounds) == rows_per_packet:
                flush(next_flag=True)
            cur_fill += 1
            cur_bounds.append(cur_fill)
            continue
        pos = 0
        while pos < length:
            if cur_fill == lanes:
                flush(next_flag=(pos == 0))
            space = lanes - cur_fill
            remaining = length - pos
            if len(cur_bounds) == rows_per_packet and remaining <= space:
                # The row would end here but the per-packet row budget is
                # exhausted: close the packet early (tail lanes become padding).
                flush(next_flag=(pos == 0))
                space = lanes
            take = min(remaining, space)
            cur_idx[cur_fill : cur_fill + take] = indices[start + pos : start + pos + take]
            cur_val[cur_fill : cur_fill + take] = raw_all[start + pos : start + pos + take]
            cur_fill += take
            pos += take
            if pos == length:
                cur_bounds.append(cur_fill)

    if cur_fill or cur_bounds:
        flush(next_flag=True)

    n_packets = len(packets_new_row)
    stream = BSCSRStream(
        layout=layout,
        codec=codec,
        n_rows=matrix.n_rows,
        n_cols=matrix.n_cols,
        nnz=matrix.nnz,
        new_row=np.array(packets_new_row, dtype=bool),
        ptr=(
            np.stack(packets_ptr)
            if n_packets
            else np.zeros((0, lanes), dtype=np.uint16)
        ),
        idx=(
            np.stack(packets_idx)
            if n_packets
            else np.zeros((0, lanes), dtype=np.int64)
        ),
        val_raw=(
            np.stack(packets_val)
            if n_packets
            else np.zeros((0, lanes), dtype=np.uint64)
        ),
        rows_per_packet=rows_per_packet,
    )
    return stream


def validate_stream(stream: BSCSRStream) -> None:
    """Structural validation of a packet stream.

    Checks ``ptr`` monotonicity, the row-budget constraint, the ``new_row``
    convention (first packet starts a row; a packet following a fully-closed
    packet must start a row) and total row count.  Raises
    :class:`PacketDecodeError` on any violation.
    """
    lanes = stream.layout.lanes
    total_rows = 0
    for p in range(stream.n_packets):
        bounds = stream.ptr[p]
        valid = bounds[bounds > 0].astype(np.int64)
        n_valid = int((bounds > 0).sum())
        if n_valid and not (bounds[:n_valid] > 0).all():
            raise PacketDecodeError(
                f"packet {p}: ptr padding appears before the last boundary"
            )
        if n_valid:
            if (np.diff(valid) <= 0).any():
                raise PacketDecodeError(f"packet {p}: ptr entries not strictly increasing")
            if valid[-1] > lanes:
                raise PacketDecodeError(
                    f"packet {p}: boundary {valid[-1]} exceeds {lanes} lanes"
                )
        if n_valid > stream.rows_per_packet:
            raise PacketDecodeError(
                f"packet {p}: {n_valid} rows end here, budget is "
                f"{stream.rows_per_packet}"
            )
        total_rows += n_valid
    if stream.n_packets and not stream.new_row[0]:
        raise PacketDecodeError("first packet must have new_row = 1")
    if total_rows != stream.n_rows:
        raise PacketDecodeError(
            f"stream finishes {total_rows} rows but encodes n_rows = {stream.n_rows}"
        )


def lane_row_ids(stream: BSCSRStream) -> np.ndarray:
    """Assign every lane its row id; padding lanes get -1.

    Shape ``(n_packets, lanes)``.  Lanes between boundaries belong to the row
    finishing at the next boundary; tail lanes after the last boundary belong
    to the row continuing into the next packet (or are padding when the next
    packet starts a new row).
    """
    lanes = stream.layout.lanes
    out = np.full((stream.n_packets, lanes), -1, dtype=np.int64)
    current_row = 0
    for p in range(stream.n_packets):
        bounds = stream.ptr[p]
        valid = bounds[bounds > 0].astype(np.int64)
        prev = 0
        for b in valid:
            out[p, prev:b] = current_row
            prev = int(b)
            current_row += 1
        tail_continues = p + 1 < stream.n_packets and not stream.new_row[p + 1]
        if tail_continues:
            out[p, prev:] = current_row
    return out


def decode_to_coo(stream: BSCSRStream) -> COOMatrix:
    """Reconstruct the matrix as COO.

    Zero-valued lanes are dropped: placeholder lanes (empty rows) and values
    whose quantised code is zero carry no information for SpMV.  For lossless
    codecs this is an exact inverse of :func:`encode_bscsr` on matrices with
    no explicitly-stored zeros.
    """
    validate_stream(stream)
    row_ids = lane_row_ids(stream)
    values = stream.values()
    keep = (row_ids >= 0) & (values != 0.0)
    return COOMatrix.from_arrays(
        rows=row_ids[keep],
        cols=stream.idx[keep],
        vals=values[keep],
        n_rows=stream.n_rows,
        n_cols=stream.n_cols,
        sort=False,
    )


def decode_to_csr(stream: BSCSRStream) -> CSRMatrix:
    """Reconstruct the matrix as CSR (see :func:`decode_to_coo` caveats)."""
    coo = decode_to_coo(stream)
    lengths = np.bincount(coo.rows, minlength=stream.n_rows)
    indptr = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
    return CSRMatrix(
        indptr=indptr, indices=coo.cols, data=coo.vals, n_cols=stream.n_cols
    )


@dataclass
class BSCSRMatrix:
    """A full matrix encoded as one BS-CSR stream per partition.

    This is the container the multi-core accelerator consumes: partition ``i``
    lives in HBM channel ``i`` and is processed by core ``i`` (Section III-A).
    """

    streams: list[BSCSRStream]
    row_offsets: np.ndarray  # global first row of each partition
    n_rows: int
    n_cols: int

    @classmethod
    def encode(
        cls,
        matrix: CSRMatrix,
        layout: PacketLayout,
        codec: ValueCodec,
        n_partitions: int = 1,
        rows_per_packet: int | None = None,
        boundaries: "np.ndarray | None" = None,
    ) -> "BSCSRMatrix":
        """Partition ``matrix`` row-wise and encode each partition.

        ``boundaries`` (``n_partitions + 1`` non-decreasing cuts from 0 to
        ``n_rows``) overrides the default balanced split — a skew-aware
        placement packs unequal row counts per channel to equalise nnz.
        """
        from repro.core.partition import RowPartition, partition_rows  # local import: no cycle at module load

        if boundaries is None:
            parts = partition_rows(matrix.n_rows, n_partitions)
        else:
            boundaries = np.asarray(boundaries, dtype=np.int64)
            if (
                len(boundaries) != n_partitions + 1
                or boundaries[0] != 0
                or boundaries[-1] != matrix.n_rows
                or (np.diff(boundaries) < 0).any()
            ):
                raise FormatError(
                    f"boundaries must be {n_partitions + 1} non-decreasing "
                    f"cuts from 0 to {matrix.n_rows}, got {boundaries!r}"
                )
            parts = [
                RowPartition(int(boundaries[p]), int(boundaries[p + 1]))
                for p in range(n_partitions)
            ]
        streams = []
        offsets = []
        for part in parts:
            sub = matrix.row_slice(part.start, part.stop)
            streams.append(encode_bscsr(sub, layout, codec, rows_per_packet))
            offsets.append(part.start)
        return cls(
            streams=streams,
            row_offsets=np.array(offsets, dtype=np.int64),
            n_rows=matrix.n_rows,
            n_cols=matrix.n_cols,
        )

    @property
    def n_partitions(self) -> int:
        """Number of partitions (= cores = HBM channels used)."""
        return len(self.streams)

    @property
    def total_packets(self) -> int:
        """Total packets across partitions."""
        return sum(s.n_packets for s in self.streams)

    @property
    def total_bytes(self) -> int:
        """Total HBM bytes across partitions."""
        return sum(s.n_bytes for s in self.streams)

    @property
    def nnz(self) -> int:
        """Total genuine non-zeros."""
        return sum(s.nnz for s in self.streams)

    def to_csr(self) -> CSRMatrix:
        """Reassemble the full matrix (partition order) as CSR."""
        import scipy.sparse as sp

        if not self.streams:
            return CSRMatrix(
                indptr=np.zeros(1, dtype=np.int64),
                indices=np.empty(0, dtype=np.int64),
                data=np.empty(0, dtype=np.float64),
                n_cols=self.n_cols,
            )
        blocks = [decode_to_csr(s).to_scipy() for s in self.streams]
        return CSRMatrix.from_scipy(sp.vstack(blocks, format="csr"))
