"""Coordinate (COO) sparse matrix container.

COO is the streaming-friendly reference format discussed in Section III-B:
three parallel arrays (row, column, value) allow burst iteration over
non-zeros but store the row coordinate redundantly for every entry, which
limits operational intensity — the problem BS-CSR solves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import FormatError

__all__ = ["COOMatrix"]


@dataclass
class COOMatrix:
    """A sparse matrix in coordinate format, kept sorted row-major.

    Attributes
    ----------
    rows, cols:
        Integer coordinate arrays of equal length ``nnz``.
    vals:
        Float64 values, same length.
    n_rows, n_cols:
        Logical matrix shape (may exceed the largest coordinate).
    """

    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    n_rows: int
    n_cols: int

    def __post_init__(self) -> None:
        self.rows = np.ascontiguousarray(self.rows, dtype=np.int64)
        self.cols = np.ascontiguousarray(self.cols, dtype=np.int64)
        self.vals = np.ascontiguousarray(self.vals, dtype=np.float64)
        self.n_rows = int(self.n_rows)
        self.n_cols = int(self.n_cols)
        self.validate()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_arrays(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        n_rows: int,
        n_cols: int,
        sort: bool = True,
    ) -> "COOMatrix":
        """Build a COO matrix, optionally sorting entries row-major.

        Duplicate coordinates are not coalesced; callers that need coalescing
        should round-trip through :meth:`to_scipy`.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if sort and len(rows):
            order = np.lexsort((cols, rows))
            rows, cols, vals = rows[order], cols[order], vals[order]
        return cls(rows=rows, cols=cols, vals=vals, n_rows=n_rows, n_cols=n_cols)

    @classmethod
    def from_scipy(cls, matrix: sp.spmatrix) -> "COOMatrix":
        """Convert any SciPy sparse matrix (coalesced, row-major sorted)."""
        coo = matrix.tocoo()
        coo.sum_duplicates()
        return cls.from_arrays(
            coo.row, coo.col, coo.data, n_rows=coo.shape[0], n_cols=coo.shape[1]
        )

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Extract the non-zero pattern of a dense 2-D array."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise FormatError(f"dense input must be 2-D, got shape {dense.shape}")
        rows, cols = np.nonzero(dense)
        return cls.from_arrays(
            rows, cols, dense[rows, cols], n_rows=dense.shape[0], n_cols=dense.shape[1]
        )

    # ------------------------------------------------------------------ #
    # Properties and validation
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return len(self.vals)

    @property
    def shape(self) -> tuple[int, int]:
        """Logical (n_rows, n_cols) shape."""
        return (self.n_rows, self.n_cols)

    def validate(self) -> None:
        """Check structural invariants; raises :class:`FormatError` on violation."""
        if not (len(self.rows) == len(self.cols) == len(self.vals)):
            raise FormatError(
                f"coordinate arrays disagree: rows={len(self.rows)}, "
                f"cols={len(self.cols)}, vals={len(self.vals)}"
            )
        if self.n_rows < 0 or self.n_cols < 0:
            raise FormatError(f"negative shape {self.shape}")
        if self.nnz:
            if self.rows.min() < 0 or self.rows.max() >= self.n_rows:
                raise FormatError(
                    f"row coordinates out of range [0, {self.n_rows}): "
                    f"[{self.rows.min()}, {self.rows.max()}]"
                )
            if self.cols.min() < 0 or self.cols.max() >= self.n_cols:
                raise FormatError(
                    f"column coordinates out of range [0, {self.n_cols}): "
                    f"[{self.cols.min()}, {self.cols.max()}]"
                )

    def is_row_sorted(self) -> bool:
        """True when entries are sorted row-major (rows, then columns)."""
        if self.nnz <= 1:
            return True
        row_step = np.diff(self.rows)
        if (row_step < 0).any():
            return False
        same_row = row_step == 0
        return bool((np.diff(self.cols)[same_row] >= 0).all())

    # ------------------------------------------------------------------ #
    # Conversion and computation
    # ------------------------------------------------------------------ #
    def to_scipy(self) -> sp.coo_matrix:
        """Convert to a SciPy COO matrix."""
        return sp.coo_matrix(
            (self.vals, (self.rows, self.cols)), shape=self.shape
        )

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense float64 array (duplicates summed)."""
        return np.asarray(self.to_scipy().todense())

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Reference SpMV ``y = A @ x`` in float64."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise FormatError(f"x must have shape ({self.n_cols},), got {x.shape}")
        y = np.zeros(self.n_rows, dtype=np.float64)
        np.add.at(y, self.rows, self.vals * x[self.cols])
        return y

    def row_lengths(self) -> np.ndarray:
        """Number of stored entries per row (length ``n_rows``)."""
        return np.bincount(self.rows, minlength=self.n_rows).astype(np.int64)

    def memory_bytes(self, row_bits: int = 32, col_bits: int = 32, val_bits: int = 32) -> int:
        """Storage footprint under a given per-field bit budget (Figure 3 accounting)."""
        total_bits = self.nnz * (row_bits + col_bits + val_bits)
        return (total_bits + 7) // 8
