"""Bit-level packing of BS-CSR packets.

The hardware reads 512-bit packets from HBM.  This module provides the
bit-exact wire representation: a :class:`BitWriter`/:class:`BitReader` pair
for arbitrary-width little-endian bit fields, and packet-level helpers that
lay out a BS-CSR packet exactly as in Figure 3 of the paper:

``[new_row: 1 bit][ptr[0..B): p bits each][idx[0..B): i bits each][val[0..B): v bits each][zero padding]``

Fields are packed LSB-first within the packet (bit 0 of the packet is the
``new_row`` bit), matching the byte-serialised order a streaming AXI master
would emit.  Unused tail bits are zero.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PacketDecodeError

__all__ = ["BitWriter", "BitReader", "pack_packet", "unpack_packet"]


class BitWriter:
    """Append arbitrary-width unsigned bit fields into a fixed-size buffer."""

    def __init__(self, total_bits: int):
        if total_bits <= 0 or total_bits % 8 != 0:
            raise ValueError(f"total_bits must be a positive multiple of 8, got {total_bits}")
        self.total_bits = total_bits
        self._buffer = bytearray(total_bits // 8)
        self._cursor = 0

    @property
    def bits_written(self) -> int:
        """Number of bits appended so far."""
        return self._cursor

    @property
    def bits_remaining(self) -> int:
        """Free bits left in the buffer."""
        return self.total_bits - self._cursor

    def write(self, value: int, width: int) -> None:
        """Append ``value`` as an unsigned field of ``width`` bits (LSB first)."""
        if width < 0:
            raise ValueError(f"width must be >= 0, got {width}")
        if width == 0:
            return
        value = int(value)
        if value < 0 or value >> width:
            raise ValueError(f"value {value} does not fit in {width} unsigned bits")
        if self._cursor + width > self.total_bits:
            raise ValueError(
                f"packet overflow: writing {width} bits at offset {self._cursor} "
                f"exceeds {self.total_bits} bits"
            )
        cursor = self._cursor
        remaining = width
        while remaining > 0:
            byte_index, bit_offset = divmod(cursor, 8)
            take = min(8 - bit_offset, remaining)
            chunk = value & ((1 << take) - 1)
            self._buffer[byte_index] |= chunk << bit_offset
            value >>= take
            cursor += take
            remaining -= take
        self._cursor = cursor

    def write_array(self, values: np.ndarray, width: int) -> None:
        """Append each element of ``values`` as a ``width``-bit field."""
        for value in np.asarray(values).ravel():
            self.write(int(value), width)

    def to_bytes(self) -> bytes:
        """Return the packed buffer (unwritten tail bits are zero)."""
        return bytes(self._buffer)


class BitReader:
    """Extract arbitrary-width unsigned bit fields from a byte buffer."""

    def __init__(self, data: bytes):
        self._data = bytes(data)
        self.total_bits = len(self._data) * 8
        self._cursor = 0

    @property
    def bits_read(self) -> int:
        """Number of bits consumed so far."""
        return self._cursor

    def read(self, width: int) -> int:
        """Consume and return the next ``width`` bits as an unsigned int."""
        if width < 0:
            raise ValueError(f"width must be >= 0, got {width}")
        if self._cursor + width > self.total_bits:
            raise PacketDecodeError(
                f"packet underflow: reading {width} bits at offset {self._cursor} "
                f"exceeds {self.total_bits} bits"
            )
        value = 0
        shift = 0
        cursor = self._cursor
        remaining = width
        while remaining > 0:
            byte_index, bit_offset = divmod(cursor, 8)
            take = min(8 - bit_offset, remaining)
            chunk = (self._data[byte_index] >> bit_offset) & ((1 << take) - 1)
            value |= chunk << shift
            shift += take
            cursor += take
            remaining -= take
        self._cursor = cursor
        return value

    def read_array(self, count: int, width: int) -> np.ndarray:
        """Consume ``count`` fields of ``width`` bits into a uint64 array."""
        if width > 64:
            raise ValueError(f"array fields wider than 64 bits unsupported, got {width}")
        return np.array([self.read(width) for _ in range(count)], dtype=np.uint64)


def pack_packet(
    new_row: bool,
    ptr: np.ndarray,
    idx: np.ndarray,
    val_raw: np.ndarray,
    ptr_bits: int,
    idx_bits: int,
    val_bits: int,
    packet_bits: int = 512,
) -> bytes:
    """Serialise one BS-CSR packet to its wire representation.

    ``ptr``, ``idx`` and ``val_raw`` must all have exactly B (= lane count)
    elements; padding lanes carry zeros.  The caller guarantees the layout's
    capacity equation, but an explicit overflow check is kept as defence.
    """
    lanes = len(ptr)
    if not (len(idx) == len(val_raw) == lanes):
        raise ValueError(
            f"field length mismatch: ptr={len(ptr)}, idx={len(idx)}, val={len(val_raw)}"
        )
    writer = BitWriter(packet_bits)
    writer.write(1 if new_row else 0, 1)
    writer.write_array(ptr, ptr_bits)
    writer.write_array(idx, idx_bits)
    writer.write_array(val_raw, val_bits)
    return writer.to_bytes()


def unpack_packet(
    data: bytes,
    lanes: int,
    ptr_bits: int,
    idx_bits: int,
    val_bits: int,
) -> tuple[bool, np.ndarray, np.ndarray, np.ndarray]:
    """Deserialise one BS-CSR packet; inverse of :func:`pack_packet`.

    Returns ``(new_row, ptr, idx, val_raw)`` with uint64 field arrays.
    """
    reader = BitReader(data)
    new_row = bool(reader.read(1))
    ptr = reader.read_array(lanes, ptr_bits)
    idx = reader.read_array(lanes, idx_bits)
    val_raw = reader.read_array(lanes, val_bits)
    return new_row, ptr, idx, val_raw
