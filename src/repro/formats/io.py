"""Persistence for sparse matrices and BS-CSR streams.

A deployed similarity-search service encodes its collection once and serves
it for days, so the encoded artifact must be storable.  Two formats:

* ``.npz`` containers (NumPy archives) for :class:`~repro.formats.csr.CSRMatrix`
  and the logical (structure-of-arrays) view of
  :class:`~repro.formats.bscsr.BSCSRStream` / ``BSCSRMatrix`` — fast,
  self-describing, versioned;
* the raw **wire format** (concatenated 512-bit packets, exactly what the
  host DMA would write into HBM) via ``save_wire``/``load_wire`` with a
  small JSON sidecar describing layout/codec/shape.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.arithmetic.codecs import codec_from_name
from repro.errors import FormatError
from repro.formats.bscsr import BSCSRMatrix, BSCSRStream
from repro.formats.csr import CSRMatrix
from repro.formats.layout import PacketLayout

__all__ = [
    "save_csr",
    "load_csr",
    "save_stream",
    "load_stream",
    "save_bscsr_matrix",
    "load_bscsr_matrix",
    "save_wire",
    "load_wire",
]

_FORMAT_VERSION = 1


def save_csr(path: "str | Path", matrix: CSRMatrix) -> None:
    """Store a CSR matrix as a ``.npz`` archive."""
    np.savez_compressed(
        path,
        version=_FORMAT_VERSION,
        kind="csr",
        indptr=matrix.indptr,
        indices=matrix.indices,
        data=matrix.data,
        n_cols=matrix.n_cols,
    )


def load_csr(path: "str | Path") -> CSRMatrix:
    """Load a CSR matrix stored by :func:`save_csr`."""
    with np.load(path, allow_pickle=False) as archive:
        _check_kind(archive, "csr", path)
        return CSRMatrix(
            indptr=archive["indptr"],
            indices=archive["indices"],
            data=archive["data"],
            n_cols=int(archive["n_cols"]),
        )


def _layout_fields(layout: PacketLayout) -> dict[str, int]:
    return {
        "lanes": layout.lanes,
        "ptr_bits": layout.ptr_bits,
        "idx_bits": layout.idx_bits,
        "val_bits": layout.val_bits,
        "packet_bits": layout.packet_bits,
    }


def _stream_payload(stream: BSCSRStream, prefix: str = "") -> dict:
    return {
        f"{prefix}new_row": stream.new_row,
        f"{prefix}ptr": stream.ptr,
        f"{prefix}idx": stream.idx,
        f"{prefix}val_raw": stream.val_raw,
    }


def save_stream(path: "str | Path", stream: BSCSRStream) -> None:
    """Store one BS-CSR stream (logical view) as a ``.npz`` archive."""
    np.savez_compressed(
        path,
        version=_FORMAT_VERSION,
        kind="bscsr-stream",
        codec=stream.codec.name,
        n_rows=stream.n_rows,
        n_cols=stream.n_cols,
        nnz=stream.nnz,
        rows_per_packet=stream.rows_per_packet,
        layout=np.array(json.dumps(_layout_fields(stream.layout))),
        **_stream_payload(stream),
    )


def load_stream(path: "str | Path") -> BSCSRStream:
    """Load a stream stored by :func:`save_stream` (validated on load)."""
    with np.load(path, allow_pickle=False) as archive:
        _check_kind(archive, "bscsr-stream", path)
        layout = PacketLayout(**json.loads(str(archive["layout"])))
        stream = BSCSRStream(
            layout=layout,
            codec=codec_from_name(str(archive["codec"])),
            n_rows=int(archive["n_rows"]),
            n_cols=int(archive["n_cols"]),
            nnz=int(archive["nnz"]),
            new_row=archive["new_row"],
            ptr=archive["ptr"],
            idx=archive["idx"],
            val_raw=archive["val_raw"],
            rows_per_packet=int(archive["rows_per_packet"]),
        )
    from repro.formats.bscsr import validate_stream

    validate_stream(stream)
    return stream


def save_bscsr_matrix(path: "str | Path", matrix: BSCSRMatrix) -> None:
    """Store a partitioned BS-CSR matrix (all streams) as one archive."""
    payload: dict = {
        "version": _FORMAT_VERSION,
        "kind": "bscsr-matrix",
        "n_rows": matrix.n_rows,
        "n_cols": matrix.n_cols,
        "n_partitions": matrix.n_partitions,
        "row_offsets": matrix.row_offsets,
    }
    for i, stream in enumerate(matrix.streams):
        payload[f"s{i}_meta"] = np.array(
            json.dumps(
                {
                    "codec": stream.codec.name,
                    "n_rows": stream.n_rows,
                    "n_cols": stream.n_cols,
                    "nnz": stream.nnz,
                    "rows_per_packet": stream.rows_per_packet,
                    "layout": _layout_fields(stream.layout),
                }
            )
        )
        payload.update(_stream_payload(stream, prefix=f"s{i}_"))
    np.savez_compressed(path, **payload)


def load_bscsr_matrix(path: "str | Path") -> BSCSRMatrix:
    """Load a partitioned matrix stored by :func:`save_bscsr_matrix`."""
    with np.load(path, allow_pickle=False) as archive:
        _check_kind(archive, "bscsr-matrix", path)
        streams = []
        for i in range(int(archive["n_partitions"])):
            meta = json.loads(str(archive[f"s{i}_meta"]))
            streams.append(
                BSCSRStream(
                    layout=PacketLayout(**meta["layout"]),
                    codec=codec_from_name(meta["codec"]),
                    n_rows=meta["n_rows"],
                    n_cols=meta["n_cols"],
                    nnz=meta["nnz"],
                    new_row=archive[f"s{i}_new_row"],
                    ptr=archive[f"s{i}_ptr"],
                    idx=archive[f"s{i}_idx"],
                    val_raw=archive[f"s{i}_val_raw"],
                    rows_per_packet=meta["rows_per_packet"],
                )
            )
        return BSCSRMatrix(
            streams=streams,
            row_offsets=archive["row_offsets"],
            n_rows=int(archive["n_rows"]),
            n_cols=int(archive["n_cols"]),
        )


def save_wire(path: "str | Path", stream: BSCSRStream) -> None:
    """Store a stream in its raw HBM wire format plus a JSON sidecar.

    The ``.bin`` file holds exactly the bytes a host would DMA into the
    board's HBM; the ``.json`` sidecar carries layout/codec/shape metadata.
    """
    path = Path(path)
    path.write_bytes(stream.to_bytes())
    sidecar = {
        "version": _FORMAT_VERSION,
        "kind": "bscsr-wire",
        "codec": stream.codec.name,
        "n_rows": stream.n_rows,
        "n_cols": stream.n_cols,
        "nnz": stream.nnz,
        "rows_per_packet": stream.rows_per_packet,
        "layout": _layout_fields(stream.layout),
    }
    path.with_suffix(path.suffix + ".json").write_text(json.dumps(sidecar, indent=2))


def load_wire(path: "str | Path") -> BSCSRStream:
    """Load a stream stored by :func:`save_wire`."""
    path = Path(path)
    sidecar_path = path.with_suffix(path.suffix + ".json")
    if not sidecar_path.exists():
        raise FormatError(f"missing wire sidecar {sidecar_path}")
    sidecar = json.loads(sidecar_path.read_text())
    if sidecar.get("kind") != "bscsr-wire":
        raise FormatError(f"{path} is not a BS-CSR wire dump")
    return BSCSRStream.from_bytes(
        path.read_bytes(),
        layout=PacketLayout(**sidecar["layout"]),
        codec=codec_from_name(sidecar["codec"]),
        n_rows=sidecar["n_rows"],
        n_cols=sidecar["n_cols"],
        nnz=sidecar["nnz"],
        rows_per_packet=sidecar["rows_per_packet"],
    )


def _check_kind(archive, expected: str, path) -> None:
    kind = str(archive["kind"]) if "kind" in archive else "?"
    if kind != expected:
        raise FormatError(f"{path} holds {kind!r}, expected {expected!r}")
