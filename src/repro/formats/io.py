"""Persistence for sparse matrices, BS-CSR streams and compiled artifacts.

A deployed similarity-search service encodes its collection once and serves
it for days, so the encoded artifact must be storable.  Three formats:

* ``.npz`` containers (NumPy archives) for :class:`~repro.formats.csr.CSRMatrix`
  and the logical (structure-of-arrays) view of
  :class:`~repro.formats.bscsr.BSCSRStream` / ``BSCSRMatrix`` — fast,
  self-describing, versioned;
* the raw **wire format** (concatenated 512-bit packets, exactly what the
  host DMA would write into HBM) via ``save_wire``/``load_wire`` with a
  small JSON sidecar describing layout/codec/shape;
* the generic **artifact container** (``save_artifact``/``load_artifact``):
  one uncompressed ``.npz`` holding flat numpy buffers plus a single JSON
  header entry carrying structure and a SHA-256 content digest.  Loading
  is buffer-verbatim — arrays come back exactly as stored and slicing them
  into per-partition views copies nothing — which is what gives
  :class:`~repro.core.collection.CompiledCollection` its instant cold-start.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.arithmetic.codecs import codec_from_name
from repro.errors import FormatError, ReproError
from repro.formats.bscsr import BSCSRMatrix, BSCSRStream
from repro.formats.csr import CSRMatrix
from repro.formats.layout import PacketLayout

__all__ = [
    "save_csr",
    "load_csr",
    "save_stream",
    "load_stream",
    "save_bscsr_matrix",
    "load_bscsr_matrix",
    "save_wire",
    "load_wire",
    "save_artifact",
    "load_artifact",
    "artifact_digest",
    "save_manifest",
    "load_manifest",
    "MANIFEST_FILENAME",
]

_FORMAT_VERSION = 1

#: Artifact-container version written when aux (derived) buffers ride along;
#: plain artifacts stay at version 1 so pre-aux builds read them unchanged,
#: and those builds reject version 2 with a clear version error instead of
#: misdiagnosing the extra buffers as corruption.
_AUX_FORMAT_VERSION = 2

#: Container versions this build can read.
_READABLE_VERSIONS = (1, 2)

_HEADER_KEY = "header"


@contextmanager
def _corruption_as_format_error(path: "str | Path", what: str):
    """Surface low-level container decode failures as typed errors.

    ``np.load`` over a truncated, bit-flipped or otherwise damaged ``.npz``
    leaks whatever its zip/npy internals hit first — ``BadZipFile``,
    ``OSError``, ``EOFError``, ``ValueError``, ``KeyError`` — none of which
    name the file or say "your artifact is broken".  Every loader wraps its
    archive access in this guard so callers always see one typed
    :class:`FormatError` naming the bad file; library errors (already
    typed) pass through untouched.
    """
    try:
        yield
    except ReproError:
        raise
    except FileNotFoundError as exc:
        raise FormatError(f"{path} does not exist") from exc
    except (zipfile.BadZipFile, OSError, EOFError, ValueError, KeyError) as exc:
        raise FormatError(
            f"{path} is not a readable {what} (corrupt or truncated): {exc}"
        ) from exc


def artifact_digest(arrays: "dict[str, np.ndarray]") -> str:
    """SHA-256 content digest of a named buffer set.

    Covers names, dtypes, shapes and raw bytes in sorted-name order, so any
    bit flip in any buffer — or a renamed/missing/extra buffer — changes the
    digest.  The header itself is not covered (it stores the digest).
    """
    sha = hashlib.sha256()
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        sha.update(name.encode())
        sha.update(str(arr.dtype).encode())
        sha.update(repr(arr.shape).encode())
        sha.update(arr.tobytes())
    return sha.hexdigest()


def save_artifact(
    path: "str | Path",
    kind: str,
    header: dict,
    arrays: "dict[str, np.ndarray]",
    aux_arrays: "dict[str, np.ndarray] | None" = None,
) -> str:
    """Store named buffers + a JSON header as one uncompressed ``.npz``.

    The header is augmented with ``version``, ``kind`` and the content
    ``digest`` over ``arrays`` (also returned, so callers need not re-hash);
    :func:`load_artifact` re-derives the digest to detect corruption.
    Uncompressed on purpose: artifact load time is a serving cold-start
    cost.  The file lands at exactly ``path`` — an open handle is passed to
    ``np.savez`` so it cannot append ``.npz`` behind the caller's back.

    The write is **crash-safe**: bytes go to a ``<path>.tmp`` sibling which
    is fsynced and then atomically renamed over ``path``, so a process kill
    mid-save leaves either the old artifact or the new one, never a torn
    file.  The stray ``.tmp`` from an interrupted save is removed on error
    and overwritten by the next save.

    ``aux_arrays`` are *derived* buffers (caches lowered from the primary
    ones, e.g. a compiled collection's contraction operand): they are
    persisted and integrity-checked under their own ``aux_digest``, but
    excluded from the content ``digest`` so adding or dropping a derived
    cache never changes an artifact's identity.
    """
    aux_arrays = aux_arrays or {}
    reserved = {_HEADER_KEY}
    for name in (*arrays, *aux_arrays):
        if name in reserved:
            raise FormatError(f"array name {name!r} is reserved for the header")
    overlap = set(arrays) & set(aux_arrays)
    if overlap:
        raise FormatError(f"aux arrays duplicate primary names: {sorted(overlap)}")
    digest = artifact_digest(arrays)
    full_header = {
        "version": _AUX_FORMAT_VERSION if aux_arrays else _FORMAT_VERSION,
        "kind": kind,
        "digest": digest,
        **header,
    }
    if aux_arrays:
        full_header["aux"] = sorted(aux_arrays)
        full_header["aux_digest"] = artifact_digest(aux_arrays)
    path = Path(path)
    tmp_path = path.with_name(path.name + ".tmp")
    try:
        with open(tmp_path, "wb") as handle:
            np.savez(
                handle,
                **{_HEADER_KEY: np.array(json.dumps(full_header))},
                **arrays,
                **aux_arrays,
            )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        tmp_path.unlink(missing_ok=True)
        raise
    return digest


def load_artifact(
    path: "str | Path", kind: str, verify: bool = True, quarantine: bool = False
) -> "tuple[dict, dict[str, np.ndarray]]":
    """Load an artifact stored by :func:`save_artifact`; returns (header, arrays).

    Raises :class:`FormatError` when the file is unreadable (truncated or
    bit-flipped containers surface as typed errors naming the file, never
    raw zip/numpy exceptions), has no header, declares a different ``kind``
    or version, or (with ``verify=True``) when the stored digest does not
    match the loaded buffers.  Auxiliary (derived) buffers declared in the
    header's ``aux`` list are returned together with the primary ones but
    verified against ``aux_digest`` instead of ``digest`` (see
    :func:`save_artifact`).

    With ``quarantine=True`` a file that fails to load is renamed to
    ``<path>.quarantined`` before the error propagates, so a serving tier
    restarting in a crash loop sets the bad artifact aside (for forensics)
    instead of tripping over it on every boot; the raised error still names
    the original path.
    """
    try:
        with _corruption_as_format_error(path, "artifact container"):
            with np.load(path, allow_pickle=False) as archive:
                if _HEADER_KEY not in archive:
                    raise FormatError(f"{path} has no artifact header")
                try:
                    header = json.loads(str(archive[_HEADER_KEY]))
                except json.JSONDecodeError as exc:
                    raise FormatError(
                        f"{path} has a malformed artifact header"
                    ) from exc
                if not isinstance(header, dict):
                    raise FormatError(f"{path} has a malformed artifact header")
                if header.get("kind") != kind:
                    raise FormatError(
                        f"{path} holds {header.get('kind')!r}, expected {kind!r}"
                    )
                if header.get("version") not in _READABLE_VERSIONS:
                    raise FormatError(
                        f"{path} has artifact version {header.get('version')!r}, "
                        f"this build reads versions {list(_READABLE_VERSIONS)}"
                    )
                arrays = {
                    name: archive[name]
                    for name in archive.files
                    if name != _HEADER_KEY
                }
        aux_names = set(header.get("aux", []))
        if verify:
            primary = {k: v for k, v in arrays.items() if k not in aux_names}
            digest = artifact_digest(primary)
            if digest != header.get("digest"):
                raise FormatError(
                    f"{path} failed its content-digest check "
                    f"(stored {header.get('digest')!r}, computed {digest!r}); "
                    "the artifact is corrupted or was edited by hand"
                )
            if aux_names:
                aux = {k: v for k, v in arrays.items() if k in aux_names}
                aux_digest = artifact_digest(aux)
                if aux_digest != header.get("aux_digest"):
                    raise FormatError(
                        f"{path} failed its aux-digest check "
                        f"(stored {header.get('aux_digest')!r}, computed "
                        f"{aux_digest!r}); the derived buffers are corrupted"
                    )
    except FormatError:
        if quarantine:
            src = Path(path)
            try:
                os.replace(src, src.with_name(src.name + ".quarantined"))
            except OSError:
                pass  # the load error matters more than the rename
        raise
    return header, arrays


#: Manifest container version this build writes.
_MANIFEST_VERSION = 1

#: Manifest container versions this build can read.
_READABLE_MANIFEST_VERSIONS = (1,)

#: File name of the manifest inside a manifest directory.
MANIFEST_FILENAME = "MANIFEST.json"


def save_manifest(
    path: "str | Path",
    kind: str,
    header: dict,
    members: "list[dict]",
    prune_prefix: "str | None" = "segment-",
) -> None:
    """Write a versioned manifest over a directory of member artifacts.

    A *manifest* is the mutable half of a multi-artifact container: ``path``
    is a directory holding one ``.npz`` artifact per member (each saved via
    :func:`save_artifact`, named by the caller — conventionally by content
    digest, which is what makes unchanged members reusable across saves),
    and a small :data:`MANIFEST_FILENAME` JSON file carrying ``version``,
    ``kind``, the caller's ``header`` (e.g. a collection *generation*
    counter) and one entry per member.  Each member entry must name its
    ``file`` (relative to ``path``) and its content ``digest`` —
    :func:`load_manifest` cross-checks both against the artifacts on disk.

    Rewriting a manifest is cheap by construction: only the JSON file and
    any *new* member artifacts touch disk; members already present (same
    digest-derived name) are reused verbatim.  ``prune_prefix`` (default
    ``"segment-"``) deletes stale ``<prefix>*.npz`` files no longer
    referenced by any entry, so a compaction that merges members does not
    leak their superseded artifacts; pass ``None`` to keep them.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    referenced: "dict[str, str]" = {}
    for i, entry in enumerate(members):
        if "file" not in entry or "digest" not in entry:
            raise FormatError(
                f"manifest member {i} must carry 'file' and 'digest', got "
                f"{sorted(entry)}"
            )
        name = str(entry["file"])
        if "/" in name or "\\" in name or name == MANIFEST_FILENAME:
            raise FormatError(f"manifest member file name {name!r} is invalid")
        # Content addressing makes sharing one file across members legal
        # (two segments with identical contents), but the same file name
        # claiming two different digests is an authoring bug.
        if referenced.setdefault(name, str(entry["digest"])) != str(entry["digest"]):
            raise FormatError(
                f"manifest member file {name!r} listed with two digests"
            )
    payload = {
        "version": _MANIFEST_VERSION,
        "kind": kind,
        "members": members,
        **{k: v for k, v in header.items() if k not in ("version", "kind", "members")},
    }
    manifest_path = path / MANIFEST_FILENAME
    tmp_path = path / (MANIFEST_FILENAME + ".tmp")
    tmp_path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    tmp_path.replace(manifest_path)  # atomic on POSIX: readers never see a torn file
    if prune_prefix:
        for stale in path.glob(f"{prune_prefix}*.npz"):
            if stale.name not in referenced:
                stale.unlink()


def load_manifest(path: "str | Path", kind: str) -> "tuple[dict, list[dict]]":
    """Load a manifest written by :func:`save_manifest`; returns (header, members).

    Validates the container version and ``kind`` and that every member's
    artifact file exists under ``path``.  Member artifact *contents* are not
    read here — callers load each via :func:`load_artifact` (which verifies
    the content digest) and should cross-check it against the member entry's
    ``digest``.
    """
    path = Path(path)
    manifest_path = path / MANIFEST_FILENAME
    if not manifest_path.is_file():
        raise FormatError(f"{path} has no {MANIFEST_FILENAME}")
    try:
        payload = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise FormatError(f"{manifest_path} is malformed JSON") from exc
    if not isinstance(payload, dict):
        raise FormatError(f"{manifest_path} must hold a JSON object")
    if payload.get("kind") != kind:
        raise FormatError(
            f"{manifest_path} holds {payload.get('kind')!r}, expected {kind!r}"
        )
    if payload.get("version") not in _READABLE_MANIFEST_VERSIONS:
        raise FormatError(
            f"{manifest_path} has manifest version {payload.get('version')!r}, "
            f"this build reads versions {list(_READABLE_MANIFEST_VERSIONS)}"
        )
    members = payload.pop("members", None)
    if not isinstance(members, list):
        raise FormatError(f"{manifest_path} has no member list")
    for i, entry in enumerate(members):
        if not isinstance(entry, dict) or "file" not in entry or "digest" not in entry:
            raise FormatError(
                f"{manifest_path}: member {i} must carry 'file' and 'digest'"
            )
        if not (path / str(entry["file"])).is_file():
            raise FormatError(
                f"{manifest_path} references missing member file {entry['file']!r}"
            )
    return payload, members


def save_csr(path: "str | Path", matrix: CSRMatrix) -> None:
    """Store a CSR matrix as a ``.npz`` archive."""
    np.savez_compressed(
        path,
        version=_FORMAT_VERSION,
        kind="csr",
        indptr=matrix.indptr,
        indices=matrix.indices,
        data=matrix.data,
        n_cols=matrix.n_cols,
    )


def load_csr(path: "str | Path") -> CSRMatrix:
    """Load a CSR matrix stored by :func:`save_csr`."""
    with _corruption_as_format_error(path, "CSR container"), np.load(
        path, allow_pickle=False
    ) as archive:
        _check_kind(archive, "csr", path)
        return CSRMatrix(
            indptr=archive["indptr"],
            indices=archive["indices"],
            data=archive["data"],
            n_cols=int(archive["n_cols"]),
        )


def _layout_fields(layout: PacketLayout) -> dict[str, int]:
    return {
        "lanes": layout.lanes,
        "ptr_bits": layout.ptr_bits,
        "idx_bits": layout.idx_bits,
        "val_bits": layout.val_bits,
        "packet_bits": layout.packet_bits,
    }


def _stream_payload(stream: BSCSRStream, prefix: str = "") -> dict:
    return {
        f"{prefix}new_row": stream.new_row,
        f"{prefix}ptr": stream.ptr,
        f"{prefix}idx": stream.idx,
        f"{prefix}val_raw": stream.val_raw,
    }


def save_stream(path: "str | Path", stream: BSCSRStream) -> None:
    """Store one BS-CSR stream (logical view) as a ``.npz`` archive."""
    np.savez_compressed(
        path,
        version=_FORMAT_VERSION,
        kind="bscsr-stream",
        codec=stream.codec.name,
        n_rows=stream.n_rows,
        n_cols=stream.n_cols,
        nnz=stream.nnz,
        rows_per_packet=stream.rows_per_packet,
        layout=np.array(json.dumps(_layout_fields(stream.layout))),
        **_stream_payload(stream),
    )


def load_stream(path: "str | Path") -> BSCSRStream:
    """Load a stream stored by :func:`save_stream` (validated on load)."""
    with _corruption_as_format_error(path, "BS-CSR stream container"), np.load(
        path, allow_pickle=False
    ) as archive:
        _check_kind(archive, "bscsr-stream", path)
        layout = PacketLayout(**json.loads(str(archive["layout"])))
        stream = BSCSRStream(
            layout=layout,
            codec=codec_from_name(str(archive["codec"])),
            n_rows=int(archive["n_rows"]),
            n_cols=int(archive["n_cols"]),
            nnz=int(archive["nnz"]),
            new_row=archive["new_row"],
            ptr=archive["ptr"],
            idx=archive["idx"],
            val_raw=archive["val_raw"],
            rows_per_packet=int(archive["rows_per_packet"]),
        )
    from repro.formats.bscsr import validate_stream

    validate_stream(stream)
    return stream


def save_bscsr_matrix(path: "str | Path", matrix: BSCSRMatrix) -> None:
    """Store a partitioned BS-CSR matrix (all streams) as one archive."""
    payload: dict = {
        "version": _FORMAT_VERSION,
        "kind": "bscsr-matrix",
        "n_rows": matrix.n_rows,
        "n_cols": matrix.n_cols,
        "n_partitions": matrix.n_partitions,
        "row_offsets": matrix.row_offsets,
    }
    for i, stream in enumerate(matrix.streams):
        payload[f"s{i}_meta"] = np.array(
            json.dumps(
                {
                    "codec": stream.codec.name,
                    "n_rows": stream.n_rows,
                    "n_cols": stream.n_cols,
                    "nnz": stream.nnz,
                    "rows_per_packet": stream.rows_per_packet,
                    "layout": _layout_fields(stream.layout),
                }
            )
        )
        payload.update(_stream_payload(stream, prefix=f"s{i}_"))
    np.savez_compressed(path, **payload)


def load_bscsr_matrix(path: "str | Path") -> BSCSRMatrix:
    """Load a partitioned matrix stored by :func:`save_bscsr_matrix`."""
    with _corruption_as_format_error(path, "BS-CSR matrix container"), np.load(
        path, allow_pickle=False
    ) as archive:
        _check_kind(archive, "bscsr-matrix", path)
        streams = []
        for i in range(int(archive["n_partitions"])):
            meta = json.loads(str(archive[f"s{i}_meta"]))
            streams.append(
                BSCSRStream(
                    layout=PacketLayout(**meta["layout"]),
                    codec=codec_from_name(meta["codec"]),
                    n_rows=meta["n_rows"],
                    n_cols=meta["n_cols"],
                    nnz=meta["nnz"],
                    new_row=archive[f"s{i}_new_row"],
                    ptr=archive[f"s{i}_ptr"],
                    idx=archive[f"s{i}_idx"],
                    val_raw=archive[f"s{i}_val_raw"],
                    rows_per_packet=meta["rows_per_packet"],
                )
            )
        return BSCSRMatrix(
            streams=streams,
            row_offsets=archive["row_offsets"],
            n_rows=int(archive["n_rows"]),
            n_cols=int(archive["n_cols"]),
        )


def save_wire(path: "str | Path", stream: BSCSRStream) -> None:
    """Store a stream in its raw HBM wire format plus a JSON sidecar.

    The ``.bin`` file holds exactly the bytes a host would DMA into the
    board's HBM; the ``.json`` sidecar carries layout/codec/shape metadata.
    """
    path = Path(path)
    path.write_bytes(stream.to_bytes())
    sidecar = {
        "version": _FORMAT_VERSION,
        "kind": "bscsr-wire",
        "codec": stream.codec.name,
        "n_rows": stream.n_rows,
        "n_cols": stream.n_cols,
        "nnz": stream.nnz,
        "rows_per_packet": stream.rows_per_packet,
        "layout": _layout_fields(stream.layout),
    }
    path.with_suffix(path.suffix + ".json").write_text(json.dumps(sidecar, indent=2))


def load_wire(path: "str | Path") -> BSCSRStream:
    """Load a stream stored by :func:`save_wire`."""
    path = Path(path)
    sidecar_path = path.with_suffix(path.suffix + ".json")
    if not sidecar_path.exists():
        raise FormatError(f"missing wire sidecar {sidecar_path}")
    sidecar = json.loads(sidecar_path.read_text())
    if sidecar.get("kind") != "bscsr-wire":
        raise FormatError(f"{path} is not a BS-CSR wire dump")
    return BSCSRStream.from_bytes(
        path.read_bytes(),
        layout=PacketLayout(**sidecar["layout"]),
        codec=codec_from_name(sidecar["codec"]),
        n_rows=sidecar["n_rows"],
        n_cols=sidecar["n_cols"],
        nnz=sidecar["nnz"],
        rows_per_packet=sidecar["rows_per_packet"],
    )


def _check_kind(archive, expected: str, path) -> None:
    kind = str(archive["kind"]) if "kind" in archive else "?"
    if kind != expected:
        raise FormatError(f"{path} holds {kind!r}, expected {expected!r}")
