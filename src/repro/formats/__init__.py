"""Sparse matrix containers and the BS-CSR streaming format.

This package implements the paper's Section III-B: the Coordinate (COO) and
Compressed Sparse Row (CSR) reference formats, and **Block-Streaming CSR
(BS-CSR)** — the paper's contribution — in which every 512-bit HBM packet is
a self-contained CSR fragment that can be decoded without cross-packet
pointer chasing.
"""

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.layout import (
    PacketLayout,
    solve_layout,
    ptr_field_bits,
    naive_coo_capacity,
    optimized_coo_capacity,
)
from repro.formats.bscsr import (
    BSCSRMatrix,
    BSCSRStream,
    encode_bscsr,
    encode_bscsr_reference,
    decode_to_coo,
    decode_to_csr,
    lane_row_ids,
    validate_stream,
)
from repro.formats.bitpack import BitWriter, BitReader, pack_packet, unpack_packet
from repro.formats.stats import (
    PackingStats,
    packing_stats,
    count_packets,
    stats_from_row_lengths,
)
from repro.formats.io import (
    save_csr,
    load_csr,
    save_stream,
    load_stream,
    save_bscsr_matrix,
    load_bscsr_matrix,
    save_wire,
    load_wire,
    save_artifact,
    load_artifact,
    artifact_digest,
)

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "PacketLayout",
    "solve_layout",
    "ptr_field_bits",
    "naive_coo_capacity",
    "optimized_coo_capacity",
    "BSCSRMatrix",
    "BSCSRStream",
    "encode_bscsr",
    "encode_bscsr_reference",
    "decode_to_coo",
    "decode_to_csr",
    "lane_row_ids",
    "validate_stream",
    "BitWriter",
    "BitReader",
    "pack_packet",
    "unpack_packet",
    "PackingStats",
    "packing_stats",
    "count_packets",
    "stats_from_row_lengths",
    "save_csr",
    "load_csr",
    "save_stream",
    "load_stream",
    "save_bscsr_matrix",
    "load_bscsr_matrix",
    "save_wire",
    "load_wire",
    "save_artifact",
    "load_artifact",
    "artifact_digest",
]
