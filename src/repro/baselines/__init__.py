"""CPU and GPU baselines the paper compares against (Section V).

* :mod:`repro.baselines.cpu` — the multi-threaded ``sparse_dot_topn`` C++
  CSR implementation on 2x Intel Xeon Gold 6248, reproduced functionally
  (SciPy CSR + per-row Top-K) with a calibrated bandwidth timing model.
* :mod:`repro.baselines.gpu` — cuSPARSE SpMV (float32/float16) + Thrust
  radix sort on a Tesla P100, reproduced functionally (NumPy reduced
  precision) with a bandwidth timing model; includes the paper's
  "idealized zero-cost sorting" variant.
"""

from repro.baselines.cpu import CpuTopKSpmv, CpuTimingModel, CPU_XEON_6248_PAIR
from repro.baselines.gpu import (
    GpuTopKSpmv,
    GpuTimingModel,
    GpuSpec,
    TESLA_P100,
    TESLA_A100,
)

__all__ = [
    "CpuTopKSpmv",
    "CpuTimingModel",
    "CPU_XEON_6248_PAIR",
    "GpuTopKSpmv",
    "GpuTimingModel",
    "GpuSpec",
    "TESLA_P100",
    "TESLA_A100",
]
