"""CPU baseline: ``sparse_dot_topn``-style Top-K SpMV (paper Section V).

Functional path: exact float64 CSR SpMV with streaming Top-K selection —
the same algorithm the ING ``sparse_dot_topn`` C++ kernel runs (CSR
traversal, per-row score, bounded candidate heap), so the *results* equal
the golden reference.

Timing path: the kernel is DRAM-bandwidth-bound with poor cache behaviour
(random accesses into ``x`` plus streaming ``data``/``indices``); the model
``t = overhead + bytes / effective_bandwidth`` with the two constants fitted
to the paper's measured baselines reproduces all four reported numbers:

=========  ==============  ===========
group      paper measured  model
=========  ==============  ===========
N=0.5e7    279 ms          ~280 ms
N=1e7      509 ms          ~509 ms
N=1.5e7    747 ms          ~740 ms
GloVe      117 ms          ~105 ms
=========  ==============  ===========
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.reference import TopKResult, topk_from_scores
from repro.errors import ConfigurationError
from repro.formats.csr import CSRMatrix
from repro.hw.calibration import CALIBRATION, CalibrationConstants
from repro.utils.validation import check_positive_int

__all__ = ["CpuSpec", "CPU_XEON_6248_PAIR", "CpuTopKSpmv", "CpuTimingModel"]


@dataclass(frozen=True)
class CpuSpec:
    """A CPU platform for the timing model."""

    name: str
    peak_bandwidth_gbps: float
    power_w: float


#: The paper's CPU: two Xeon Gold 6248 (2 x 6 DDR4-2933 channels), 384 GB.
CPU_XEON_6248_PAIR = CpuSpec(
    name="2x Xeon Gold 6248",
    peak_bandwidth_gbps=CALIBRATION.cpu_peak_bandwidth_gbps,
    power_w=CALIBRATION.cpu_power_w,
)


class CpuTopKSpmv:
    """Functional sparse_dot_topn equivalent (exact float64 results)."""

    def __init__(self, matrix):
        """``matrix`` is a :class:`CSRMatrix` or a
        :class:`~repro.core.collection.CompiledCollection` (the baseline then
        runs on the artifact's original float64 matrix, so FPGA-vs-CPU
        comparisons share one compiled source of truth)."""
        from repro.core.collection import original_matrix

        matrix = original_matrix(matrix)
        if not isinstance(matrix, CSRMatrix):
            raise ConfigurationError("CpuTopKSpmv expects a CSRMatrix")
        self.matrix = matrix
        self._scipy = matrix.to_scipy()

    def query(self, x: np.ndarray, top_k: int) -> TopKResult:
        """Vectorised query: CSR SpMV then linear-time Top-K selection."""
        top_k = check_positive_int(top_k, "top_k")
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.matrix.n_cols,):
            raise ConfigurationError(
                f"x must have shape ({self.matrix.n_cols},), got {x.shape}"
            )
        scores = np.asarray(self._scipy @ x).ravel()
        return topk_from_scores(scores, top_k)

    def query_rowwise(self, x: np.ndarray, top_k: int) -> TopKResult:
        """Row-at-a-time query with a bounded heap.

        Mirrors the actual C++ kernel's control flow (never materialises the
        full ``y``); used by tests to show both paths agree.  Ties are
        resolved to the same ordering as the golden reference.
        """
        top_k = check_positive_int(top_k, "top_k")
        x = np.asarray(x, dtype=np.float64)
        heap: list[tuple[float, int]] = []  # (value, -row) min-heap
        indptr, indices, data = (
            self.matrix.indptr,
            self.matrix.indices,
            self.matrix.data,
        )
        for row in range(self.matrix.n_rows):
            lo, hi = indptr[row], indptr[row + 1]
            value = float(data[lo:hi] @ x[indices[lo:hi]])
            entry = (value, -row)
            if len(heap) < top_k:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)
        ordered = sorted(heap, key=lambda e: (-e[0], -e[1]))
        return TopKResult(
            indices=np.array([-r for _, r in ordered], dtype=np.int64),
            values=np.array([v for v, _ in ordered], dtype=np.float64),
        )


@dataclass(frozen=True)
class CpuTimingModel:
    """Calibrated bandwidth model of the multi-threaded CPU kernel."""

    spec: CpuSpec = CPU_XEON_6248_PAIR
    constants: CalibrationConstants = CALIBRATION

    @property
    def effective_bandwidth_bps(self) -> float:
        """Achieved streaming bandwidth of the Top-K SpMV loop."""
        return self.constants.cpu_effective_bandwidth_gbps * 1e9

    def bytes_touched(self, nnz: int, n_rows: int) -> int:
        """Memory traffic of one query: CSR data+indices plus row pointers.

        float32 values and int32 indices (sparse_dot_topn's types); the
        Top-K candidates stay in cache and are not counted.
        """
        if nnz < 0 or n_rows < 0:
            raise ConfigurationError("nnz and n_rows must be >= 0")
        return nnz * 8 + (n_rows + 1) * 4

    def query_time_s(self, nnz: int, n_rows: int) -> float:
        """Modelled wall time of one Top-K SpMV query."""
        return (
            self.constants.cpu_overhead_s
            + self.bytes_touched(nnz, n_rows) / self.effective_bandwidth_bps
        )

    def throughput_nnz_per_s(self, nnz: int, n_rows: int) -> float:
        """Non-zeros per second at the modelled time."""
        t = self.query_time_s(nnz, n_rows)
        return nnz / t if t > 0 else 0.0

    def bandwidth_efficiency(self) -> float:
        """Fraction of the sockets' peak DRAM bandwidth actually achieved."""
        return self.effective_bandwidth_bps / (self.spec.peak_bandwidth_gbps * 1e9)
