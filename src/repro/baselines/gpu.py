"""GPU baseline: cuSPARSE SpMV + Thrust radix sort on a Tesla P100.

The paper knows no GPU Top-K SpMV, so it composes cuSPARSE CSR SpMV (float32
and float16) with a full radix sort of the output vector, and additionally
reports an *idealized* variant where sorting is free ("as if cuSPARSE
already retrieved Top-K values at no cost").

Functional path: NumPy float32/float16 value quantisation with float32
accumulation (cuSPARSE behaviour for fp16 inputs), then an exact sort —
bit-faithful for the Figure 7 accuracy comparison.

Timing path: SpMV is bandwidth-bound; per-precision efficiencies and the
sort throughput are fitted to Figure 5's GPU bars (~51x/58x vs CPU for
N=1e7, "7x" total FPGA advantage when sorting is included).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arithmetic.float_formats import FLOAT16, FLOAT32
from repro.core.reference import TopKResult, topk_from_scores
from repro.errors import ConfigurationError
from repro.formats.csr import CSRMatrix
from repro.hw.calibration import CALIBRATION, CalibrationConstants
from repro.utils.validation import check_one_of, check_positive_int

__all__ = ["GpuSpec", "TESLA_P100", "TESLA_A100", "GpuTopKSpmv", "GpuTimingModel"]


@dataclass(frozen=True)
class GpuSpec:
    """A GPU platform for the timing model."""

    name: str
    peak_bandwidth_gbps: float
    power_w: float


#: The paper's GPU (549 GB/s HBM2, 250 W).
TESLA_P100 = GpuSpec(name="Tesla P100", peak_bandwidth_gbps=549.0, power_w=250.0)

#: The paper's "even faster GPU" projection target (Section V-A).
TESLA_A100 = GpuSpec(name="Tesla A100", peak_bandwidth_gbps=1555.0, power_w=400.0)

_BYTES_PER_NNZ = {"float32": 8, "float16": 6}  # value + 4-byte column index


class GpuTopKSpmv:
    """Functional GPU Top-K SpMV: reduced-precision SpMV + exact sort."""

    def __init__(self, matrix, precision: str = "float32"):
        """
        Parameters
        ----------
        matrix:
            The embedding collection: a :class:`CSRMatrix` or a
            :class:`~repro.core.collection.CompiledCollection` (the
            baseline then runs on the artifact's original float64 matrix).
        precision:
            ``"float32"`` or ``"float16"`` — storage precision of matrix
            values and of the dense vector, as in the paper's two GPU
            configurations.  Accumulation is float32 in both cases.
        """
        from repro.core.collection import original_matrix

        matrix = original_matrix(matrix)
        check_one_of(precision, "precision", tuple(_BYTES_PER_NNZ))
        self.precision = precision
        fmt = FLOAT16 if precision == "float16" else FLOAT32
        self.matrix = matrix.with_data(fmt.quantize(matrix.data))
        self._scipy = self.matrix.to_scipy().astype(np.float32)
        self._fmt = fmt

    def scores(self, x: np.ndarray) -> np.ndarray:
        """The full output vector ``y`` as the GPU would compute it.

        Values and the dense vector are quantised to the configured
        precision; accumulation happens in float32 (cuSPARSE behaviour).
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.matrix.n_cols,):
            raise ConfigurationError(
                f"x must have shape ({self.matrix.n_cols},), got {x.shape}"
            )
        x_quant = self._fmt.quantize(x).astype(np.float32)
        return np.asarray(self._scipy @ x_quant, dtype=np.float64).ravel()

    def query(self, x: np.ndarray, top_k: int) -> TopKResult:
        """SpMV in reduced precision, float32 accumulation, exact Top-K."""
        top_k = check_positive_int(top_k, "top_k")
        return topk_from_scores(self.scores(x), top_k)


@dataclass(frozen=True)
class GpuTimingModel:
    """Calibrated bandwidth + sort model of the GPU Top-K SpMV pipeline."""

    spec: GpuSpec = TESLA_P100
    constants: CalibrationConstants = CALIBRATION

    def efficiency(self, precision: str) -> float:
        """SpMV bandwidth efficiency for the given precision."""
        check_one_of(precision, "precision", tuple(_BYTES_PER_NNZ))
        if precision == "float16":
            return self.constants.gpu_efficiency_float16
        return self.constants.gpu_efficiency_float32

    def spmv_bytes(self, nnz: int, n_rows: int, precision: str) -> int:
        """Traffic of one CSR SpMV: values+indices, row pointers, y write."""
        if nnz < 0 or n_rows < 0:
            raise ConfigurationError("nnz and n_rows must be >= 0")
        return nnz * _BYTES_PER_NNZ[precision] + n_rows * 8

    def spmv_time_s(self, nnz: int, n_rows: int, precision: str = "float32") -> float:
        """SpMV-only time — the paper's idealized zero-cost-sort variant."""
        bandwidth = self.spec.peak_bandwidth_gbps * 1e9 * self.efficiency(precision)
        return (
            self.constants.gpu_overhead_s
            + self.spmv_bytes(nnz, n_rows, precision) / bandwidth
        )

    def sort_time_s(self, n_rows: int) -> float:
        """Thrust radix sort of the full (value, index) output vector."""
        if n_rows < 0:
            raise ConfigurationError("n_rows must be >= 0")
        return n_rows / self.constants.gpu_sort_pairs_per_s

    def query_time_s(
        self,
        nnz: int,
        n_rows: int,
        precision: str = "float32",
        zero_cost_sort: bool = False,
    ) -> float:
        """Full Top-K SpMV time (optionally with the idealized free sort)."""
        t = self.spmv_time_s(nnz, n_rows, precision)
        if not zero_cost_sort:
            t += self.sort_time_s(n_rows)
        return t

    def throughput_nnz_per_s(
        self,
        nnz: int,
        n_rows: int,
        precision: str = "float32",
        zero_cost_sort: bool = True,
    ) -> float:
        """Non-zeros per second (idealized by default, as in Figure 6)."""
        t = self.query_time_s(nnz, n_rows, precision, zero_cost_sort)
        return nnz / t if t > 0 else 0.0
