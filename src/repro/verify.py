"""End-to-end self-check: cross-validate every pair of redundant paths.

``python -m repro.verify`` runs a battery of internal consistency checks a
release artifact should pass on any machine — each check compares two
*independently implemented* paths that must agree:

1. BS-CSR encode → decode returns the source matrix (lossless codec);
2. logical packets ↔ bit-exact 512-bit wire serialisation round-trip;
3. the fast packet counter equals the real encoder's packet count;
4. the vectorised dataflow equals the per-packet reference, bit for bit,
   for fixed-point and float32 accumulation;
5. the functional hardware path equals the algorithmic partitioned
   approximation under a lossless codec;
6. the Monte Carlo precision estimate matches the closed form;
7. the vectorised timing estimate matches the exact greedy packer timing;
8. the cycle-level pipeline simulation matches the analytic core model on
   paper-shaped workloads;
9. every paper design point fits the U280 resource budget.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.utils.rng import derive_rng, sample_unit_queries

__all__ = ["CheckResult", "run_self_check", "main"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one self-check."""

    name: str
    passed: bool
    detail: str


def _check_roundtrip(rng) -> CheckResult:
    from repro.arithmetic.codecs import ExactCodec
    from repro.data.synthetic import synthetic_embeddings
    from repro.formats import decode_to_csr, encode_bscsr, solve_layout

    matrix = synthetic_embeddings(1500, 256, 10, distribution="gamma", seed=rng)
    layout = solve_layout(256, 64)
    stream = encode_bscsr(
        matrix, layout, ExactCodec(), rows_per_packet=max(1, layout.lanes // 2)
    )
    back = decode_to_csr(stream)
    ok = (
        np.array_equal(back.indptr, matrix.indptr)
        and np.array_equal(back.indices, matrix.indices)
        and np.array_equal(back.data, matrix.data)
    )
    return CheckResult("bscsr-roundtrip", ok, f"{stream.n_packets} packets")


def _check_wire(rng) -> CheckResult:
    from repro.arithmetic.codecs import codec_for_design
    from repro.data.synthetic import synthetic_embeddings
    from repro.formats import BSCSRStream, encode_bscsr, solve_layout

    matrix = synthetic_embeddings(800, 1024, 20, seed=rng)
    codec = codec_for_design(20, "fixed")
    layout = solve_layout(1024, 20)
    stream = encode_bscsr(matrix, layout, codec, rows_per_packet=7)
    again = BSCSRStream.from_bytes(
        stream.to_bytes(), layout, codec,
        n_rows=stream.n_rows, n_cols=stream.n_cols,
        nnz=stream.nnz, rows_per_packet=7,
    )
    ok = (
        np.array_equal(again.ptr, stream.ptr)
        and np.array_equal(again.idx, stream.idx)
        and np.array_equal(again.val_raw, stream.val_raw)
        and np.array_equal(again.new_row, stream.new_row)
    )
    return CheckResult("wire-serialisation", ok, f"{stream.n_bytes} bytes")


def _check_counter(rng) -> CheckResult:
    from repro.arithmetic.codecs import ExactCodec
    from repro.data.synthetic import synthetic_embeddings
    from repro.formats import count_packets, encode_bscsr, solve_layout

    matrix = synthetic_embeddings(2000, 256, 8, distribution="gamma", seed=rng)
    layout = solve_layout(256, 32, lanes=9)
    stream = encode_bscsr(matrix, layout, ExactCodec(), rows_per_packet=3)
    counted, _, _ = count_packets(matrix.row_lengths(), 9, 3)
    return CheckResult(
        "packet-counter", counted == stream.n_packets,
        f"encoder {stream.n_packets}, counter {counted}",
    )


def _check_dataflow_equivalence(rng) -> CheckResult:
    from repro.arithmetic.codecs import codec_for_design
    from repro.core.dataflow import DataflowCore
    from repro.data.synthetic import synthetic_embeddings
    from repro.formats import encode_bscsr, solve_layout

    matrix = synthetic_embeddings(1200, 512, 12, seed=rng)
    x = sample_unit_queries(rng, 1, 512)[0]
    ok = True
    for bits, arith, dtype in ((20, "fixed", np.float64), (32, "float", np.float32)):
        stream = encode_bscsr(
            matrix, solve_layout(512, bits), codec_for_design(bits, arith),
            rows_per_packet=7,
        )
        core = DataflowCore(8, x, dtype)
        ref, _ = core.run(stream)
        fast, _ = core.run_fast(stream)
        ok &= np.array_equal(ref.indices, fast.indices)
        ok &= np.array_equal(ref.values, fast.values)
    return CheckResult("dataflow-fast-vs-reference", ok, "fixed20 + float32")


def _check_engine_vs_algorithmic(rng) -> CheckResult:
    from repro.core.approx import approximate_topk_spmv
    from repro.core.engine import TopKSpmvEngine
    from repro.data.synthetic import synthetic_embeddings
    from repro.hw.design import AcceleratorDesign

    matrix = synthetic_embeddings(1500, 256, 10, seed=rng)
    x = sample_unit_queries(rng, 1, 256)[0]
    design = AcceleratorDesign(
        name="exact64 8C", value_bits=64, arithmetic="fixed",
        cores=8, local_k=8, max_columns=256,
    )
    engine = TopKSpmvEngine(matrix, design=design)
    got = engine.query(x, top_k=32).topk
    expected = approximate_topk_spmv(
        matrix, design.quantize_query(x), 32, n_partitions=8, local_k=8
    )
    ok = got.indices.tolist() == expected.indices.tolist()
    return CheckResult("engine-vs-algorithmic", ok, "lossless codec, c=8, k=8")


def _check_precision_theory(rng) -> CheckResult:
    from repro.core.precision_model import (
        estimate_precision_monte_carlo,
        expected_precision,
    )

    mc = estimate_precision_monte_carlo(10**6, 16, 8, 100, trials=2000, seed=rng)
    closed = expected_precision(10**6, 16, 8, 100)
    return CheckResult(
        "precision-mc-vs-closed", mc.within(closed),
        f"mc {mc.mean:.4f} ± {mc.std_error:.4f}, closed {closed:.4f}",
    )


def _check_timing_estimate(rng) -> CheckResult:
    from repro.data.synthetic import uniform_row_lengths
    from repro.hw.design import PAPER_DESIGNS
    from repro.hw.multicore import TopKSpmvAccelerator

    lengths = uniform_row_lengths(60_000, 20, rng)
    accel = TopKSpmvAccelerator(PAPER_DESIGNS["20b"])
    exact = accel.timing_from_row_lengths(lengths).total_seconds
    estimate = accel.timing_estimate_from_row_lengths(lengths).total_seconds
    ok = abs(exact - estimate) <= 1e-3 * exact
    return CheckResult(
        "timing-estimate-vs-exact", ok, f"exact {exact:.6f}s, estimate {estimate:.6f}s"
    )


def _check_cycle_sim(rng) -> CheckResult:
    from repro.hw.cycle_sim import PipelineSimulator
    from repro.hw.design import PAPER_DESIGNS
    from repro.hw.fpga_core import FPGACoreModel

    sim = PipelineSimulator(PAPER_DESIGNS["20b"])
    report = sim.simulate_uniform_rows(n_rows=3000, nnz_per_row=20)
    analytic = FPGACoreModel(PAPER_DESIGNS["20b"]).time_for_packets(report.packets)
    ok = abs(report.seconds - analytic.seconds) <= 0.05 * analytic.seconds
    return CheckResult(
        "cycle-sim-vs-analytic", ok,
        f"sim {report.seconds * 1e6:.1f} us, analytic {analytic.seconds * 1e6:.1f} us",
    )


def _check_designs_fit(rng) -> CheckResult:
    from repro.hw.design import PAPER_DESIGNS
    from repro.hw.resources import ResourceModel

    model = ResourceModel()
    worst = 0.0
    for design in PAPER_DESIGNS.values():
        worst = max(worst, max(model.utilization(design).values()))
    return CheckResult("designs-fit-u280", worst <= 1.0, f"peak utilisation {worst:.0%}")


_CHECKS: "list[Callable]" = [
    _check_roundtrip,
    _check_wire,
    _check_counter,
    _check_dataflow_equivalence,
    _check_engine_vs_algorithmic,
    _check_precision_theory,
    _check_timing_estimate,
    _check_cycle_sim,
    _check_designs_fit,
]


def run_self_check(seed: int = 0) -> list[CheckResult]:
    """Run all checks; each gets an independent RNG stream."""
    rng = derive_rng(seed)
    return [check(rng) for check in _CHECKS]


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point: print a pass/fail line per check."""
    del argv
    results = run_self_check()
    width = max(len(r.name) for r in results)
    failures = 0
    for result in results:
        status = "PASS" if result.passed else "FAIL"
        failures += not result.passed
        print(f"{result.name.ljust(width)}  {status}  {result.detail}")
    print(f"\n{len(results) - failures}/{len(results)} checks passed")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
