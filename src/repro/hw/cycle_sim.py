"""Packet-level cycle simulation of one core's 4-stage dataflow pipeline.

The analytic model (:mod:`repro.hw.fpga_core`) assumes one packet per cycle.
This simulator checks that assumption by walking the actual packet stream
through the pipeline stages with their structural hazards:

* **memory stage** — a packet arrives every ``ceil(clock / channel_rate)``
  cycles on average (modelled as a fractional issue interval);
* **scatter/aggregate stages** — fully pipelined, II = 1 (fixed point) or
  the design's float II;
* **Top-K update stage** — the argmin scratchpad handles one finished row
  per cycle; a packet finishing ``m`` rows occupies the stage for
  ``max(1, m)`` cycles and back-pressures the pipeline when ``m > 1``.

On the paper's workloads (20-40 non-zeros per row, B <= 15) at most one row
ends per packet almost always, so the update cost is hidden — the paper's
"our data-flow design completely hides the Top-K update cost".  The
simulator quantifies where that stops being true (very short rows), an
ablation the analytic model cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.formats.bscsr import BSCSRStream
from repro.hw.calibration import CALIBRATION, CalibrationConstants
from repro.hw.design import AcceleratorDesign
from repro.hw.hbm import ALVEO_U280_HBM, HBMConfig

__all__ = ["CycleReport", "PipelineSimulator"]


@dataclass(frozen=True)
class CycleReport:
    """Outcome of simulating one partition stream on one core."""

    packets: int
    cycles: float
    stall_cycles: float
    memory_wait_cycles: float
    seconds: float
    clock_mhz: float

    @property
    def packets_per_cycle(self) -> float:
        """Achieved packet rate in packets/cycle (1.0 = fully pipelined)."""
        if self.cycles == 0:
            return 0.0
        return self.packets / self.cycles

    @property
    def stall_fraction(self) -> float:
        """Fraction of cycles lost to update-stage back-pressure."""
        if self.cycles == 0:
            return 0.0
        return self.stall_cycles / self.cycles


class PipelineSimulator:
    """Cycle-walks a BS-CSR stream through the 4-stage core pipeline."""

    def __init__(
        self,
        design: AcceleratorDesign,
        hbm: HBMConfig = ALVEO_U280_HBM,
        constants: CalibrationConstants = CALIBRATION,
    ):
        self.design = design
        self.hbm = hbm
        self.constants = constants

    @property
    def clock_hz(self) -> float:
        """Core clock in Hz."""
        return self.design.resolved_clock_mhz * 1e6

    @property
    def memory_issue_interval(self) -> float:
        """Cycles between packet arrivals from the HBM channel (>= 1)."""
        packet_rate = self.hbm.channel_sustained_bps / self.design.layout.packet_bytes
        return max(1.0, self.clock_hz / packet_rate)

    @property
    def compute_issue_interval(self) -> float:
        """Cycles between packets the arithmetic pipeline can absorb."""
        if self.design.arithmetic == "float":
            return self.constants.float_initiation_interval
        return self.constants.fixed_point_initiation_interval

    def simulate_rows_per_packet(self, rows_per_packet: np.ndarray) -> CycleReport:
        """Simulate from the per-packet finished-row counts.

        The stream's values are irrelevant to timing; only how many rows
        finish in each packet matters (update-stage occupancy).
        """
        rows_per_packet = np.asarray(rows_per_packet, dtype=np.int64)
        if (rows_per_packet < 0).any():
            raise ConfigurationError("rows_per_packet entries must be >= 0")
        n_packets = len(rows_per_packet)
        if n_packets == 0:
            return CycleReport(
                packets=0, cycles=0.0, stall_cycles=0.0,
                memory_wait_cycles=0.0, seconds=0.0,
                clock_mhz=self.design.resolved_clock_mhz,
            )
        mem_ii = self.memory_issue_interval
        comp_ii = self.compute_issue_interval

        # Every packet must wait for (a) its arrival from the channel,
        # (b) the arithmetic pipeline's initiation interval, and (c) the
        # update stage finishing the previous packet's rows.
        arrival = (np.arange(n_packets, dtype=np.float64) + 1.0) * mem_ii
        update_busy = np.maximum(1.0, rows_per_packet.astype(np.float64))
        t = arrival[0]
        stall = 0.0
        mem_wait = 0.0
        for p in range(1, n_packets):
            compute_ready = t + comp_ii
            update_ready = t + update_busy[p - 1]
            start = max(arrival[p], compute_ready, update_ready)
            if update_ready > max(arrival[p], compute_ready):
                stall += update_ready - max(arrival[p], compute_ready)
            if arrival[p] > max(compute_ready, update_ready):
                mem_wait += arrival[p] - max(compute_ready, update_ready)
            t = start

        drain = self.constants.pipeline_fill_cycles + float(update_busy[-1])
        cycles = t + drain
        return CycleReport(
            packets=n_packets,
            cycles=cycles,
            stall_cycles=stall,
            memory_wait_cycles=mem_wait,
            seconds=cycles / self.clock_hz,
            clock_mhz=self.design.resolved_clock_mhz,
        )

    def simulate_stream(self, stream: BSCSRStream) -> CycleReport:
        """Simulate an encoded stream (uses its real row-ending profile)."""
        rows_per_packet = (stream.ptr > 0).sum(axis=1).astype(np.int64)
        return self.simulate_rows_per_packet(rows_per_packet)

    def simulate_uniform_rows(self, n_rows: int, nnz_per_row: int) -> CycleReport:
        """Closed workload: ``n_rows`` constant-length rows.

        Handy for the short-row ablation without materialising a matrix.
        """
        from repro.formats.stats import count_packets
        from repro.utils.validation import check_positive_int

        check_positive_int(n_rows, "n_rows")
        check_positive_int(nnz_per_row, "nnz_per_row")
        lengths = np.full(n_rows, nnz_per_row, dtype=np.int64)
        lanes = self.design.layout.lanes
        r = self.design.effective_rows_per_packet
        n_packets, _, _ = count_packets(lengths, lanes, r)
        # Reconstruct the per-packet row-ending profile for constant rows.
        rows_per_packet = np.zeros(n_packets, dtype=np.int64)
        fill = 0
        bounds = 0
        packet = 0
        for _ in range(n_rows):
            remaining = nnz_per_row
            while remaining > 0:
                if fill == lanes:
                    packet += 1
                    fill = 0
                    bounds = 0
                space = lanes - fill
                if bounds == r and remaining <= space:
                    packet += 1
                    fill = 0
                    bounds = 0
                    space = lanes
                take = min(remaining, space)
                fill += take
                remaining -= take
                if remaining == 0:
                    rows_per_packet[packet] += 1
                    bounds += 1
        return self.simulate_rows_per_packet(rows_per_packet)
