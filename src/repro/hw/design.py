"""Accelerator design points (the paper's Table II rows and DSE variants).

An :class:`AcceleratorDesign` bundles everything the models need: value
precision and arithmetic type, the derived BS-CSR packet layout, the
per-core scratchpad depth ``k``, the rows-per-packet budget ``r``, the core
count and the clock.  The four designs evaluated in the paper are exposed in
:data:`PAPER_DESIGNS`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from functools import cached_property

import numpy as np

from repro.arithmetic.codecs import ValueCodec, codec_for_design
from repro.arithmetic.fixed_point import FixedPointFormat, Q1_31

#: 32-bit signed query format for the "signed" arithmetic extension.
_SIGNED_QUERY_FORMAT = FixedPointFormat(integer_bits=1, fraction_bits=30, signed=True)
from repro.errors import ConfigurationError
from repro.formats.layout import PacketLayout, solve_layout
from repro.hw.clocking import achievable_clock_mhz
from repro.utils.validation import check_one_of, check_positive_int

__all__ = ["AcceleratorDesign", "PAPER_DESIGNS", "design_by_name"]


@dataclass(frozen=True)
class AcceleratorDesign:
    """A complete Top-K SpMV accelerator configuration.

    Attributes
    ----------
    name:
        Identifier used in reports (e.g. ``"FPGA 20b 32C"``).
    value_bits:
        Storage width of matrix values (20/25/32).
    arithmetic:
        ``"fixed"`` (unsigned Q1.n, as in the paper), ``"signed"``
        (offset-binary signed fixed point, an extension) or ``"float"``
        (IEEE float32).
    cores:
        Independent cores, one HBM channel each (max 32 on the U280).
    local_k:
        Per-core Top-K scratchpad depth (paper: 8).
    max_columns:
        Upper bound on the embedding dimension M; sizes the ``idx`` field
        (paper assumes idx < 1024, i.e. 10 bits).
    rows_per_packet:
        The ``r`` budget; ``None`` derives the paper's choice
        ``ceil(B/2)`` (within the recommended B/4 < r < B/2 .. B range).
    packet_bits:
        HBM packet width (512).
    clock_mhz:
        Clock override; ``None`` derives it from :mod:`repro.hw.clocking`.
    """

    name: str
    value_bits: int
    arithmetic: str = "fixed"
    cores: int = 32
    local_k: int = 8
    max_columns: int = 1024
    rows_per_packet: int | None = None
    packet_bits: int = 512
    clock_mhz: float | None = None

    def __post_init__(self) -> None:
        check_positive_int(self.value_bits, "value_bits")
        check_one_of(self.arithmetic, "arithmetic", ("fixed", "signed", "float"))
        check_positive_int(self.cores, "cores")
        check_positive_int(self.local_k, "local_k")
        check_positive_int(self.max_columns, "max_columns")
        check_positive_int(self.packet_bits, "packet_bits")
        if self.rows_per_packet is not None:
            r = check_positive_int(self.rows_per_packet, "rows_per_packet")
            if r > self.layout.lanes:
                raise ConfigurationError(
                    f"rows_per_packet = {r} exceeds the layout's {self.layout.lanes} lanes"
                )
        if self.clock_mhz is not None and self.clock_mhz <= 0:
            raise ConfigurationError(f"clock_mhz must be > 0, got {self.clock_mhz}")

    # ------------------------------------------------------------------ #
    # Derived structure
    # ------------------------------------------------------------------ #
    @cached_property
    def layout(self) -> PacketLayout:
        """The BS-CSR packet layout implied by M bound and value width."""
        return solve_layout(self.max_columns, self.value_bits, self.packet_bits)

    @cached_property
    def codec(self) -> ValueCodec:
        """Value codec for matrix entries."""
        return codec_for_design(self.value_bits, self.arithmetic)

    @property
    def effective_rows_per_packet(self) -> int:
        """The ``r`` actually used: explicit value or the paper's ceil(B/2)."""
        if self.rows_per_packet is not None:
            return self.rows_per_packet
        return math.ceil(self.layout.lanes / 2)

    @property
    def resolved_clock_mhz(self) -> float:
        """Clock in MHz (explicit override or the clocking model)."""
        if self.clock_mhz is not None:
            return self.clock_mhz
        return achievable_clock_mhz(self.value_bits, self.arithmetic, self.local_k)

    @property
    def accumulate_dtype(self) -> np.dtype:
        """Accumulator model: exact (float64) for fixed point, float32 for F32."""
        return np.dtype(np.float32 if self.arithmetic == "float" else np.float64)

    @property
    def uram_replicas(self) -> int:
        """Replicas of x per core: ceil(B/2) for dual-port URAM."""
        return -(-self.layout.lanes // 2)

    def quantize_query(self, x: np.ndarray) -> np.ndarray:
        """Quantise the query vector as stored in URAM.

        Fixed-point designs store x at 32 bits (Q1.31, Section IV-A's
        worst-case sizing; the signed extension uses sQ1.30, also 32 bits);
        the float design stores float32.
        """
        x = np.asarray(x, dtype=np.float64)
        if self.arithmetic == "float":
            return x.astype(np.float32).astype(np.float64)
        if self.arithmetic == "signed":
            return _SIGNED_QUERY_FORMAT.quantize(x)
        return Q1_31.quantize(x)

    def with_cores(self, cores: int) -> "AcceleratorDesign":
        """A copy with a different core count (for the Fig. 6a scaling study)."""
        return replace(self, name=f"{self.base_name} {cores}C", cores=cores)

    @property
    def base_name(self) -> str:
        """Name without the core-count suffix."""
        return self.name.rsplit(" ", 1)[0] if self.name.endswith("C") else self.name

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"{self.name}: {self.value_bits}-bit {self.arithmetic}, "
            f"{self.cores} cores, k={self.local_k}, r={self.effective_rows_per_packet}, "
            f"B={self.layout.lanes}, {self.resolved_clock_mhz:.0f} MHz"
        )


#: The four design points of Table II (20/25/32-bit fixed, float32; 32 cores).
PAPER_DESIGNS: dict[str, AcceleratorDesign] = {
    "20b": AcceleratorDesign(name="FPGA 20b 32C", value_bits=20, arithmetic="fixed"),
    "25b": AcceleratorDesign(name="FPGA 25b 32C", value_bits=25, arithmetic="fixed"),
    "32b": AcceleratorDesign(name="FPGA 32b 32C", value_bits=32, arithmetic="fixed"),
    "f32": AcceleratorDesign(name="FPGA F32 32C", value_bits=32, arithmetic="float"),
}


def design_by_name(name: str) -> AcceleratorDesign:
    """Look up a paper design by its short key ('20b', '25b', '32b', 'f32')."""
    try:
        return PAPER_DESIGNS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown design {name!r}; expected one of {sorted(PAPER_DESIGNS)}"
        ) from exc
