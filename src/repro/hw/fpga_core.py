"""Per-core timing model (Section IV: one packet per cycle per core).

A core consumes one 512-bit packet per clock cycle when the pipeline's
initiation interval is 1 and its HBM channel can deliver packets that fast.
The steady-state packet rate is therefore::

    rate = min(clock / II, channel_sustained_bandwidth / packet_bytes)

The paper's fixed-point designs are *memory-bound* (253 MHz consumption vs
~130 M packets/s sustained delivery), which is why their throughput scales
with B (non-zeros per packet) and not with the clock; the float32 design is
*compute-bound* (II ≈ 3 from the floating-point accumulation chain), which
reproduces the roughly-halved F32 bars of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hw.calibration import CALIBRATION, CalibrationConstants
from repro.hw.design import AcceleratorDesign
from repro.hw.hbm import ALVEO_U280_HBM, HBMConfig

__all__ = ["CoreTiming", "FPGACoreModel"]


@dataclass(frozen=True)
class CoreTiming:
    """Timing of one core processing one partition stream."""

    n_packets: int
    cycles: float
    seconds: float
    packet_rate: float
    bound: str  # "memory" or "compute"

    @property
    def effective_bandwidth_bps(self) -> float:
        """Bytes/s actually pulled from the channel while streaming."""
        if self.seconds == 0.0:
            return 0.0
        return self.n_packets * 64 / self.seconds


class FPGACoreModel:
    """Steady-state timing of one core attached to one HBM channel."""

    def __init__(
        self,
        design: AcceleratorDesign,
        hbm: HBMConfig = ALVEO_U280_HBM,
        constants: CalibrationConstants = CALIBRATION,
    ):
        self.design = design
        self.hbm = hbm
        self.constants = constants

    @property
    def initiation_interval(self) -> float:
        """Pipeline II: 1 for fixed point, ~3 for the float32 accumulator."""
        if self.design.arithmetic == "float":
            return self.constants.float_initiation_interval
        return self.constants.fixed_point_initiation_interval

    @property
    def compute_packet_rate(self) -> float:
        """Packets/s the pipeline can absorb (clock / II)."""
        return self.design.resolved_clock_mhz * 1e6 / self.initiation_interval

    @property
    def memory_packet_rate(self) -> float:
        """Packets/s one channel can sustain end-to-end."""
        return self.hbm.channel_sustained_bps / self.design.layout.packet_bytes

    @property
    def packet_rate(self) -> float:
        """Steady-state packets/s: the binding constraint of the two."""
        return min(self.compute_packet_rate, self.memory_packet_rate)

    @property
    def bound(self) -> str:
        """Which constraint binds: "memory" or "compute"."""
        return (
            "compute"
            if self.compute_packet_rate < self.memory_packet_rate
            else "memory"
        )

    def time_for_packets(self, n_packets: int) -> CoreTiming:
        """Time for a core to stream and process ``n_packets`` packets."""
        if n_packets < 0:
            raise ConfigurationError(f"n_packets must be >= 0, got {n_packets}")
        rate = self.packet_rate
        fill = self.constants.pipeline_fill_cycles
        clock_hz = self.design.resolved_clock_mhz * 1e6
        seconds = n_packets / rate + (fill / clock_hz if n_packets else 0.0)
        cycles = seconds * clock_hz
        return CoreTiming(
            n_packets=n_packets,
            cycles=cycles,
            seconds=seconds,
            packet_rate=rate,
            bound=self.bound,
        )

    def throughput_nnz_per_s(self, nnz_per_packet: float | None = None) -> float:
        """Steady-state non-zeros/s of one core.

        ``nnz_per_packet`` defaults to the layout's full B (dense packets).
        """
        if nnz_per_packet is None:
            nnz_per_packet = float(self.design.layout.lanes)
        if nnz_per_packet <= 0:
            raise ConfigurationError(
                f"nnz_per_packet must be > 0, got {nnz_per_packet}"
            )
        return self.packet_rate * nnz_per_packet
