"""Power models (Table II's power column and Section V-B).

The FPGA model is static + activity-weighted dynamic power, fitted to the
four measured design points (34/35/35/45 W, tolerance ±1 W).  CPU/GPU/host
draw the constants the paper reports from its external power meter; they are
kept in :mod:`repro.hw.calibration`.

Power efficiency (performance per watt) drives the paper's headline claims:
~400x vs the CPU and 14.2x vs the GPU (7.7x when both include an equal host
machine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.hw.calibration import CALIBRATION, CalibrationConstants
from repro.hw.resources import ResourceModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.design import AcceleratorDesign

__all__ = ["estimate_fpga_power_w", "PowerBudget", "performance_per_watt"]


def estimate_fpga_power_w(
    design: "AcceleratorDesign",
    constants: CalibrationConstants = CALIBRATION,
) -> float:
    """Board power of an accelerator design in watts (Table II column)."""
    model = ResourceModel(constants=constants)
    total = model.total(design)
    activity = constants.fpga_float_activity_factor if design.arithmetic == "float" else 1.0
    dynamic = (
        constants.fpga_lut_power_w_per_mhz * total.lut * activity
        + constants.fpga_dsp_power_w_per_mhz * total.dsp
    ) * design.resolved_clock_mhz
    return constants.fpga_static_power_w + dynamic


@dataclass(frozen=True)
class PowerBudget:
    """Execution power of one platform, with and without the host server."""

    name: str
    device_w: float
    host_w: float

    def __post_init__(self) -> None:
        if self.device_w <= 0 or self.host_w < 0:
            raise ConfigurationError(
                f"invalid power budget: device={self.device_w}, host={self.host_w}"
            )

    @property
    def total_w(self) -> float:
        """Device plus host power."""
        return self.device_w + self.host_w


def performance_per_watt(
    throughput: float, budget: PowerBudget, include_host: bool = False
) -> float:
    """Performance/Watt in the paper's sense (non-zeros per second per watt).

    The paper quotes the 14.2x GPU comparison on device power alone and the
    7.7x variant with an equal host machine included.
    """
    if throughput < 0:
        raise ConfigurationError(f"throughput must be >= 0, got {throughput}")
    watts = budget.total_w if include_host else budget.device_w
    return throughput / watts
