"""HBM accelerator-card registry (the paper's "smaller boards" future work).

Section VI: *"We will also apply our design to smaller FPGA accelerator
cards: with similar memory bandwidth, the computation can be cheaper and
even more power-efficient, with no performance loss."*  This module models
that study: a :class:`Board` bundles an HBM stack, a URAM budget and an FPGA
resource pool, and :func:`accelerator_on_board` instantiates the paper's
design on it (clipping the core count to the board's channels).

Registered boards:

* **Alveo U280** — the paper's card (32 channels, 460 GB/s, large FPGA);
* **Alveo U50** — half-height card: 32 channels but 316 GB/s and a smaller
  FPGA / power budget;
* **Alveo U55C** — same 460 GB/s HBM2e in a denser, lower-power card.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import CapacityError, ConfigurationError
from repro.hw.design import AcceleratorDesign
from repro.hw.hbm import ALVEO_U280_HBM, HBMConfig
from repro.hw.multicore import TopKSpmvAccelerator
from repro.hw.resources import ResourceModel, ResourceUsage, U280_AVAILABLE
from repro.hw.uram import ALVEO_U280_URAM, URAMSpec

__all__ = ["Board", "ALVEO_U280", "ALVEO_U50", "ALVEO_U55C", "BOARDS", "accelerator_on_board"]


@dataclass(frozen=True)
class Board:
    """An HBM FPGA accelerator card."""

    name: str
    hbm: HBMConfig
    uram: URAMSpec
    resources: ResourceUsage
    max_power_w: float

    def __post_init__(self) -> None:
        if self.max_power_w <= 0:
            raise ConfigurationError(f"max_power_w must be > 0, got {self.max_power_w}")

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Aggregate HBM peak bandwidth."""
        return self.hbm.aggregate_peak_gbps()


#: The paper's evaluation card.
ALVEO_U280 = Board(
    name="Alveo U280",
    hbm=ALVEO_U280_HBM,
    uram=ALVEO_U280_URAM,
    resources=U280_AVAILABLE,
    max_power_w=225.0,
)

#: Half-height, lower-power card: same channel count, ~31% less bandwidth.
ALVEO_U50 = Board(
    name="Alveo U50",
    hbm=replace(ALVEO_U280_HBM, channel_peak_gbps=316.0 / 32),
    uram=URAMSpec(total_bytes=640 * 36864),
    resources=ResourceUsage(lut=872_000, ff=1_743_000, bram=1_344, uram=640, dsp=5_952),
    max_power_w=75.0,
)

#: HBM2e card with the U280's bandwidth in a denser, passively-cooled form.
ALVEO_U55C = Board(
    name="Alveo U55C",
    hbm=ALVEO_U280_HBM,
    uram=URAMSpec(total_bytes=640 * 36864),
    resources=ResourceUsage(lut=872_000, ff=1_743_000, bram=1_344, uram=640, dsp=5_952),
    max_power_w=150.0,
)

#: All registered boards by name.
BOARDS: dict[str, Board] = {
    "u280": ALVEO_U280,
    "u50": ALVEO_U50,
    "u55c": ALVEO_U55C,
}


def accelerator_on_board(
    design: AcceleratorDesign, board: Board
) -> TopKSpmvAccelerator:
    """Instantiate a design on a board, checking channels and area.

    The core count is clipped to the board's HBM channels (the binding
    constraint in the paper); area feasibility is verified against the
    board's resource pool.
    """
    cores = min(design.cores, board.hbm.n_channels)
    fitted = design.with_cores(cores) if cores != design.cores else design
    model = ResourceModel(available=board.resources)
    total = model.total(fitted)
    if not total.fits(board.resources):
        util = total.utilization(board.resources)
        over = {k: f"{v:.0%}" for k, v in util.items() if v > 1.0}
        raise CapacityError(
            f"design '{fitted.name}' does not fit {board.name}: {over}"
        )
    return TopKSpmvAccelerator(fitted, hbm=board.hbm)
