"""Hardware substrate models: HBM, URAM, FPGA cores, resources, power.

Nothing in this package executes on real hardware — it is the analytical /
cycle-level substitute for the paper's Alveo U280 testbed (see DESIGN.md §2).
All tunable constants live in :mod:`repro.hw.calibration` with their
provenance documented.
"""

from repro.hw.calibration import CALIBRATION, CalibrationConstants
from repro.hw.design import AcceleratorDesign, PAPER_DESIGNS, design_by_name
from repro.hw.hbm import HBMConfig, ALVEO_U280_HBM
from repro.hw.uram import URAMSpec, ALVEO_U280_URAM, replicas_needed, max_vector_size
from repro.hw.resources import (
    ResourceUsage,
    ResourceModel,
    U280_AVAILABLE,
    estimate_core_resources,
    estimate_total_resources,
)
from repro.hw.clocking import achievable_clock_mhz
from repro.hw.power import estimate_fpga_power_w, PowerBudget
from repro.hw.fpga_core import FPGACoreModel, CoreTiming
from repro.hw.multicore import TopKSpmvAccelerator, AcceleratorTiming
from repro.hw.boards import Board, BOARDS, ALVEO_U280, ALVEO_U50, ALVEO_U55C, accelerator_on_board
from repro.hw.cycle_sim import PipelineSimulator, CycleReport

__all__ = [
    "CALIBRATION",
    "CalibrationConstants",
    "AcceleratorDesign",
    "PAPER_DESIGNS",
    "design_by_name",
    "HBMConfig",
    "ALVEO_U280_HBM",
    "URAMSpec",
    "ALVEO_U280_URAM",
    "replicas_needed",
    "max_vector_size",
    "ResourceUsage",
    "ResourceModel",
    "U280_AVAILABLE",
    "estimate_core_resources",
    "estimate_total_resources",
    "achievable_clock_mhz",
    "estimate_fpga_power_w",
    "PowerBudget",
    "FPGACoreModel",
    "CoreTiming",
    "TopKSpmvAccelerator",
    "AcceleratorTiming",
    "Board",
    "BOARDS",
    "ALVEO_U280",
    "ALVEO_U50",
    "ALVEO_U55C",
    "accelerator_on_board",
    "PipelineSimulator",
    "CycleReport",
]
