"""Calibration constants for every analytical hardware model.

Single registry for every tunable number in the performance/resource/power
models, with provenance:

* **Spec-derived** — taken from device datasheets or the paper's setup
  section (HBM channel count, peak bandwidths, TDPs).
* **Measurement-derived** — taken from published measurements (Shuhai
  FCCM'20 per-channel streaming efficiency).
* **Fitted** — least-squares fit against the paper's reported numbers
  (Table II utilisation/power, Figure 5 baselines).  Each fitted constant
  names the targets it was fitted to; the calibration test suite asserts the
  fit still reproduces them within the documented tolerance.

Keeping these in one frozen dataclass makes every model deterministic and
lets experiments construct alternative calibrations (e.g. an A100-class GPU)
without monkey-patching.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CalibrationConstants", "CALIBRATION"]


@dataclass(frozen=True)
class CalibrationConstants:
    """All model constants; see module docstring for provenance classes."""

    # ------------------------------------------------------------------ #
    # HBM (Alveo U280) — spec + measurement derived
    # ------------------------------------------------------------------ #
    #: Channels exposed by the two HBM2 stacks (spec; paper Section V).
    hbm_channels: int = 32
    #: Peak per-pseudo-channel bandwidth: 460 GB/s / 32 (paper Section V).
    hbm_channel_peak_gbps: float = 14.375
    #: Long-burst streaming efficiency of one channel ≈ 13.2/14.375
    #: (Shuhai FCCM'20 measurements; also the per-core roofline of Fig. 6a).
    hbm_streaming_efficiency: float = 0.918
    #: Fraction of the streaming rate an end-to-end Top-K SpMV query attains
    #: (fitted to Figure 5's FPGA speedups / the ">57 Gnnz/s" claim; covers
    #: refresh, page misses, drain and output write-back).
    hbm_sustained_fraction: float = 0.633

    # ------------------------------------------------------------------ #
    # FPGA core timing
    # ------------------------------------------------------------------ #
    #: Initiation interval of the fixed-point pipelines (Section V-A:
    #: "fixed-point guarantees higher speedups thanks to the lower II").
    fixed_point_initiation_interval: float = 1.0
    #: Effective II of the float32 design (fitted to the F32 bars of Fig. 5:
    #: 43-44x vs the CPU across matrix groups).
    float_initiation_interval: float = 3.0
    #: Pipeline fill/drain cycles per partition stream (model constant).
    pipeline_fill_cycles: int = 96
    #: Host-side per-query overhead, seconds (fitted to the GloVe group of
    #: Fig. 5 where small matrices expose the constant term).
    host_overhead_s: float = 0.12e-3

    # ------------------------------------------------------------------ #
    # CPU baseline (2x Xeon Gold 6248 running sparse_dot_topn)
    # ------------------------------------------------------------------ #
    #: Effective streaming bandwidth of the Top-K SpMV loop (fitted to the
    #: paper's measured 279/509/747 ms baselines; ~1.9% of the sockets'
    #: 281.6 GB/s peak, consistent with the paper's roofline placement).
    cpu_effective_bandwidth_gbps: float = 5.3
    #: Fixed dispatch/threading overhead per query, seconds (same fit).
    cpu_overhead_s: float = 0.049
    #: Peak DRAM bandwidth of the two sockets (spec: 2 x 6 ch DDR4-2933).
    cpu_peak_bandwidth_gbps: float = 281.6
    #: Package power during execution (paper Section V-B).
    cpu_power_w: float = 300.0

    # ------------------------------------------------------------------ #
    # GPU baseline (Tesla P100: cuSPARSE SpMV + Thrust radix sort)
    # ------------------------------------------------------------------ #
    #: Peak HBM bandwidth (spec; paper Section V).
    gpu_peak_bandwidth_gbps: float = 549.0
    #: SpMV bandwidth efficiency in float32 (fitted to the GPU F32 bars of
    #: Figure 5; consistent with published cuSPARSE CSR efficiencies).
    gpu_efficiency_float32: float = 0.437
    #: SpMV bandwidth efficiency in float16 (fitted to the GPU F16 bars).
    gpu_efficiency_float16: float = 0.373
    #: Thrust radix-sort throughput in (key, value) pairs per second
    #: (fitted to the "7x when accounting for sorting" claim).
    gpu_sort_pairs_per_s: float = 0.42e9
    #: Per-query launch/allocation overhead, seconds.
    gpu_overhead_s: float = 0.05e-3
    #: Board power during execution (paper Section V-B).
    gpu_power_w: float = 250.0

    # ------------------------------------------------------------------ #
    # Host machine
    # ------------------------------------------------------------------ #
    #: Host server power, added to FPGA and GPU figures (paper Section V-B).
    host_power_w: float = 40.0

    # ------------------------------------------------------------------ #
    # FPGA power model (fitted to Table II: 34/35/35/45 W, tol. ±1 W)
    # ------------------------------------------------------------------ #
    #: Static + shell power, W.
    fpga_static_power_w: float = 30.0
    #: Dynamic power per LUT per MHz, W.
    fpga_lut_power_w_per_mhz: float = 4.369e-8
    #: Dynamic power per DSP per MHz, W.
    fpga_dsp_power_w_per_mhz: float = 1.0e-6
    #: Toggle-activity multiplier of floating-point logic (same fit).
    fpga_float_activity_factor: float = 3.404

    # ------------------------------------------------------------------ #
    # FPGA resource model (fitted to Table II utilisation, tol. ±2 pp)
    # ------------------------------------------------------------------ #
    #: LUTs: shell + per-core base + per-lane cost x (val_bits + 32).
    lut_shell: float = 61987.0
    lut_core_base: float = 802.0
    lut_per_lane_bit: float = 13.415
    lut_float_factor: float = 1.308
    #: Flip-flops, same structure.
    ff_shell: float = 12550.0
    ff_core_base: float = 10169.0
    ff_per_lane_bit: float = 17.617
    ff_float_factor: float = 1.182
    #: BRAM: interconnect/shell dominated, plus per-core stream FIFOs.
    bram_shell: float = 298.0
    bram_per_core: float = 2.0
    #: DSP: per-core control base + per-lane multiplier cost by width.
    dsp_core_base: float = 4.7
    dsp_float_per_lane: float = 4.44
    #: Fraction of core LUT/FF attributable to per-row logic at the anchor
    #: r = ceil(B/2); scales linearly in r (Section IV-B "up to 50%" claim).
    row_logic_fraction: float = 0.5


#: The default calibration used across the library.
CALIBRATION = CalibrationConstants()
