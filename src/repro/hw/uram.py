"""URAM model for the replicated query vector (Section IV-A).

The dense query ``x`` lives on-chip in URAM so that every lane of a packet
can resolve ``x[idx]`` in one cycle.  A URAM bank has two read ports, so a
core performing ``B`` random reads per cycle replicates ``x`` ``ceil(B/2)``
times.  The paper bounds the supported vector size at ~80 000 entries in the
worst case (32-bit values, 32 cores, 8 replicas per core) against its stated
~90 MB URAM budget.

Physical note (DESIGN.md §5): the U280 actually provides 960 URAM blocks x
288 Kb = 34.56 MB.  The default spec reproduces the paper's stated budget so
its capacity claims replay; ``ALVEO_U280_URAM_PHYSICAL`` models the silicon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CapacityError, ConfigurationError
from repro.utils.validation import check_positive_int

__all__ = [
    "URAMSpec",
    "ALVEO_U280_URAM",
    "ALVEO_U280_URAM_PHYSICAL",
    "replicas_needed",
    "blocks_per_replica",
    "max_vector_size",
    "check_vector_fits",
]


@dataclass(frozen=True)
class URAMSpec:
    """A URAM budget: block geometry and total capacity."""

    total_bytes: int
    block_bytes: int = 36864  # 288 Kb per UltraRAM block
    read_ports: int = 2

    def __post_init__(self) -> None:
        check_positive_int(self.total_bytes, "total_bytes")
        check_positive_int(self.block_bytes, "block_bytes")
        check_positive_int(self.read_ports, "read_ports")

    @property
    def n_blocks(self) -> int:
        """Number of URAM blocks in the budget."""
        return self.total_bytes // self.block_bytes


#: The paper's stated budget ("a URAM size of around 90MB").
ALVEO_U280_URAM = URAMSpec(total_bytes=90_000_000)

#: The U280's physical URAM: 960 blocks x 36 KB.
ALVEO_U280_URAM_PHYSICAL = URAMSpec(total_bytes=960 * 36864)


def replicas_needed(lanes: int, read_ports: int = 2) -> int:
    """Copies of ``x`` required for ``lanes`` random reads per cycle.

    Each bank serves ``read_ports`` reads per cycle, hence ``ceil(B / ports)``
    replicas (the paper's ``ceil(B/2)``).
    """
    lanes = check_positive_int(lanes, "lanes")
    read_ports = check_positive_int(read_ports, "read_ports")
    return -(-lanes // read_ports)


def blocks_per_replica(vector_size: int, x_bits: int, spec: URAMSpec = ALVEO_U280_URAM) -> int:
    """URAM blocks holding one replica of an ``x`` with ``vector_size`` entries."""
    vector_size = check_positive_int(vector_size, "vector_size")
    x_bits = check_positive_int(x_bits, "x_bits")
    replica_bytes = math.ceil(vector_size * x_bits / 8)
    return max(1, -(-replica_bytes // spec.block_bytes))


def max_vector_size(
    cores: int,
    lanes: int,
    x_bits: int = 32,
    spec: URAMSpec = ALVEO_U280_URAM,
) -> int:
    """Largest supported ``x`` length for a full multi-core design.

    Reproduces Section IV-A: 32 cores, 8 replicas, 32-bit values against the
    ~90 MB budget supports vectors up to ~80 000 entries.
    """
    cores = check_positive_int(cores, "cores")
    replicas = replicas_needed(lanes, spec.read_ports)
    bytes_per_entry = x_bits / 8
    per_copy = bytes_per_entry * replicas * cores
    if per_copy <= 0:
        raise ConfigurationError("invalid replica accounting")
    return int(spec.total_bytes // per_copy)


def check_vector_fits(
    vector_size: int,
    cores: int,
    lanes: int,
    x_bits: int = 32,
    spec: URAMSpec = ALVEO_U280_URAM,
) -> None:
    """Raise :class:`CapacityError` when ``x`` cannot be replicated on chip."""
    limit = max_vector_size(cores, lanes, x_bits, spec)
    if vector_size > limit:
        raise CapacityError(
            f"x with {vector_size} entries exceeds the URAM budget: "
            f"{cores} cores x {replicas_needed(lanes, spec.read_ports)} replicas of "
            f"{x_bits}-bit entries support at most {limit} entries"
        )
