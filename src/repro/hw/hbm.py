"""HBM2 memory-subsystem model (Alveo U280).

The U280 exposes 8 GB of HBM2 through 32 pseudo-channels with an aggregate
460 GB/s peak.  The paper's design gives each core exclusive use of one
channel and reads 512-bit packets in maximum-length AXI4 bursts (256 beats),
which is what lets the multi-core layout scale linearly with channels
(Figure 6a's rooflines: 13.2 GB/s x cores).

Three bandwidth tiers are modelled (see :mod:`repro.hw.calibration`):

* ``peak`` — datasheet channel bandwidth (14.375 GB/s);
* ``streaming`` — long-burst achievable rate (≈13.2 GB/s, Shuhai FCCM'20),
  the roofline ceiling;
* ``sustained`` — what an end-to-end query attains after refresh/page/drain
  effects (fitted; the rate the timing model uses).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CapacityError, ConfigurationError
from repro.hw.calibration import CALIBRATION, CalibrationConstants
from repro.utils.validation import check_positive_int

__all__ = ["HBMConfig", "HBMChannel", "ALVEO_U280_HBM"]

_GB = 1e9


@dataclass(frozen=True)
class HBMConfig:
    """An HBM stack configuration."""

    n_channels: int = 32
    channel_peak_gbps: float = 14.375
    streaming_efficiency: float = CALIBRATION.hbm_streaming_efficiency
    sustained_fraction: float = CALIBRATION.hbm_sustained_fraction
    burst_beats: int = 256
    beat_bytes: int = 64
    capacity_bytes: int = 8 * 2**30

    def __post_init__(self) -> None:
        check_positive_int(self.n_channels, "n_channels")
        if self.channel_peak_gbps <= 0:
            raise ConfigurationError(
                f"channel_peak_gbps must be > 0, got {self.channel_peak_gbps}"
            )
        for name in ("streaming_efficiency", "sustained_fraction"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1], got {value}")

    # ------------------------------------------------------------------ #
    # Per-channel rates
    # ------------------------------------------------------------------ #
    @property
    def channel_peak_bps(self) -> float:
        """Datasheet bandwidth of one pseudo-channel, bytes/s."""
        return self.channel_peak_gbps * _GB

    @property
    def channel_streaming_bps(self) -> float:
        """Long-burst achievable bandwidth of one channel (roofline ceiling)."""
        return self.channel_peak_bps * self.streaming_efficiency

    @property
    def channel_sustained_bps(self) -> float:
        """End-to-end attained bandwidth of one channel (timing model rate)."""
        return self.channel_streaming_bps * self.sustained_fraction

    @property
    def burst_bytes(self) -> int:
        """Bytes moved by one maximum-length AXI4 burst."""
        return self.burst_beats * self.beat_bytes

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def aggregate_peak_gbps(self, n_channels: int | None = None) -> float:
        """Aggregate datasheet bandwidth over ``n_channels`` (GB/s)."""
        return self._channels(n_channels) * self.channel_peak_gbps

    def aggregate_streaming_gbps(self, n_channels: int | None = None) -> float:
        """Aggregate streaming bandwidth (Fig. 6a: 13.2 GB/s per core)."""
        return self._channels(n_channels) * self.channel_streaming_bps / _GB

    def _channels(self, n_channels: int | None) -> int:
        if n_channels is None:
            return self.n_channels
        n_channels = check_positive_int(n_channels, "n_channels")
        if n_channels > self.n_channels:
            raise CapacityError(
                f"{n_channels} channels requested, stack exposes {self.n_channels}"
            )
        return n_channels

    def channel(self) -> "HBMChannel":
        """Instantiate one pseudo-channel."""
        return HBMChannel(config=self)


@dataclass(frozen=True)
class HBMChannel:
    """One pseudo-channel serving a single core's packet stream."""

    config: HBMConfig = field(default_factory=HBMConfig)

    def bursts_for(self, n_bytes: int) -> int:
        """Number of maximum-length AXI4 bursts needed for ``n_bytes``."""
        if n_bytes < 0:
            raise ConfigurationError(f"n_bytes must be >= 0, got {n_bytes}")
        burst = self.config.burst_bytes
        return -(-n_bytes // burst)

    def transfer_time_s(self, n_bytes: int, rate: str = "sustained") -> float:
        """Time to stream ``n_bytes``, using the chosen bandwidth tier."""
        rates = {
            "peak": self.config.channel_peak_bps,
            "streaming": self.config.channel_streaming_bps,
            "sustained": self.config.channel_sustained_bps,
        }
        try:
            bandwidth = rates[rate]
        except KeyError as exc:
            raise ConfigurationError(
                f"rate must be one of {sorted(rates)}, got {rate!r}"
            ) from exc
        if n_bytes < 0:
            raise ConfigurationError(f"n_bytes must be >= 0, got {n_bytes}")
        return n_bytes / bandwidth

    def packets_per_second(self, packet_bytes: int, rate: str = "sustained") -> float:
        """Packet delivery rate for ``packet_bytes``-byte packets."""
        packet_bytes = check_positive_int(packet_bytes, "packet_bytes")
        return 1.0 / self.transfer_time_s(packet_bytes, rate)


def hbm_from_calibration(constants: CalibrationConstants) -> HBMConfig:
    """Build an :class:`HBMConfig` from a calibration registry."""
    return HBMConfig(
        n_channels=constants.hbm_channels,
        channel_peak_gbps=constants.hbm_channel_peak_gbps,
        streaming_efficiency=constants.hbm_streaming_efficiency,
        sustained_fraction=constants.hbm_sustained_fraction,
    )


#: The board evaluated in the paper: 32 channels, 460 GB/s aggregate peak.
ALVEO_U280_HBM = hbm_from_calibration(CALIBRATION)
