"""Achievable clock frequency model (Table II's MHz column).

The four paper designs closed timing at 253/240/249/204 MHz; the spread
among the fixed-point designs (240-253) is place-and-route variation, so the
model anchors the exact paper values for the paper design points and applies
a structural estimate elsewhere:

* fixed-point logic closes around 247 MHz, float32 around 204 MHz (the
  deeper FP datapath);
* the Top-K argmin has a RAW dependency chain across ``k`` registers
  (Section IV-B: "higher k results in lower clock speed"), modelled as a
  gentle degradation beyond the paper's k = 8.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.utils.validation import check_positive_int

__all__ = ["achievable_clock_mhz", "PAPER_CLOCKS_MHZ"]

#: Measured clocks of the four paper design points (Table II).
PAPER_CLOCKS_MHZ: dict[tuple[int, str], float] = {
    (20, "fixed"): 253.0,
    (25, "fixed"): 240.0,
    (32, "fixed"): 249.0,
    (32, "float"): 204.0,
}

_FIXED_BASE_MHZ = 247.0
_FLOAT_BASE_MHZ = 204.0
#: Exponent of the argmin chain penalty: f ~ (8/k)^0.25 beyond k = 8.
_ARGMIN_PENALTY_EXPONENT = 0.25
_PAPER_K = 8


def achievable_clock_mhz(value_bits: int, arithmetic: str, local_k: int = 8) -> float:
    """Estimate the design's clock in MHz.

    Paper design points at k = 8 return the measured Table II values; other
    configurations use the structural model described in the module
    docstring.
    """
    check_positive_int(value_bits, "value_bits")
    check_positive_int(local_k, "local_k")
    if arithmetic not in ("fixed", "signed", "float"):
        raise ConfigurationError(
            f"arithmetic must be 'fixed', 'signed' or 'float', got {arithmetic!r}"
        )
    if local_k == _PAPER_K and (value_bits, arithmetic) in PAPER_CLOCKS_MHZ:
        return PAPER_CLOCKS_MHZ[(value_bits, arithmetic)]
    base = _FLOAT_BASE_MHZ if arithmetic == "float" else _FIXED_BASE_MHZ
    if local_k > _PAPER_K:
        base *= (_PAPER_K / local_k) ** _ARGMIN_PENALTY_EXPONENT
    return base
