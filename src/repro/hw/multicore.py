"""Whole-accelerator timing: c cores, one HBM channel each (Section III-A).

The accelerator's query latency is the *makespan* — the slowest core's
stream time (partitions are balanced so cores finish nearly together) — plus
the host-side invocation overhead and the final k*c-candidate merge, which
is negligible next to streaming hundreds of millions of non-zeros.

Two entry points:

* :meth:`TopKSpmvAccelerator.timing_from_packets` — exact per-partition
  packet counts (from encoded streams or packing stats);
* :meth:`TopKSpmvAccelerator.timing_from_row_lengths` — paper-scale sizing
  without materialising the matrix (uses the packing counter).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CapacityError, ConfigurationError
from repro.formats.stats import count_packets
from repro.hw.calibration import CALIBRATION, CalibrationConstants
from repro.hw.design import AcceleratorDesign
from repro.hw.fpga_core import FPGACoreModel
from repro.hw.hbm import ALVEO_U280_HBM, HBMConfig

__all__ = ["AcceleratorTiming", "TopKSpmvAccelerator"]


@dataclass(frozen=True)
class AcceleratorTiming:
    """End-to-end timing of one Top-K SpMV query."""

    design_name: str
    core_seconds: tuple[float, ...]
    host_overhead_s: float
    nnz: int
    bytes_streamed: int

    @property
    def makespan_s(self) -> float:
        """Slowest core's stream time."""
        return max(self.core_seconds) if self.core_seconds else 0.0

    @property
    def total_seconds(self) -> float:
        """Query latency: makespan + host overhead."""
        return self.makespan_s + self.host_overhead_s

    @property
    def throughput_nnz_per_s(self) -> float:
        """Achieved non-zeros per second (the paper's headline metric)."""
        if self.total_seconds == 0.0:
            return 0.0
        return self.nnz / self.total_seconds

    @property
    def effective_bandwidth_gbps(self) -> float:
        """Aggregate bytes/s pulled from HBM during the query."""
        if self.total_seconds == 0.0:
            return 0.0
        return self.bytes_streamed / self.total_seconds / 1e9


class TopKSpmvAccelerator:
    """Timing model of the full multi-core design on an HBM board."""

    def __init__(
        self,
        design: AcceleratorDesign,
        hbm: HBMConfig = ALVEO_U280_HBM,
        constants: CalibrationConstants = CALIBRATION,
    ):
        if design.cores > hbm.n_channels:
            raise CapacityError(
                f"design wants {design.cores} cores but the board exposes "
                f"{hbm.n_channels} HBM channels"
            )
        self.design = design
        self.hbm = hbm
        self.constants = constants
        self.core_model = FPGACoreModel(design, hbm, constants)

    def timing_from_packets(
        self, packets_per_core: "list[int] | np.ndarray", nnz: int
    ) -> AcceleratorTiming:
        """Timing given exact per-core packet counts."""
        packets = [int(p) for p in packets_per_core]
        if len(packets) > self.design.cores:
            raise ConfigurationError(
                f"{len(packets)} partitions exceed the design's {self.design.cores} cores"
            )
        if any(p < 0 for p in packets):
            raise ConfigurationError("packet counts must be >= 0")
        core_seconds = tuple(
            self.core_model.time_for_packets(p).seconds for p in packets
        )
        packet_bytes = self.design.layout.packet_bytes
        return AcceleratorTiming(
            design_name=self.design.name,
            core_seconds=core_seconds,
            host_overhead_s=self.constants.host_overhead_s,
            nnz=int(nnz),
            bytes_streamed=sum(packets) * packet_bytes,
        )

    def timing_from_row_lengths(self, row_lengths: np.ndarray) -> AcceleratorTiming:
        """Timing at arbitrary scale from row lengths alone.

        Splits rows into balanced contiguous partitions (as the partitioner
        does) and counts the packets each core would stream.
        """
        row_lengths = np.asarray(row_lengths, dtype=np.int64)
        from repro.core.partition import partition_rows

        lanes = self.design.layout.lanes
        r = self.design.effective_rows_per_packet
        packets = []
        for part in partition_rows(len(row_lengths), self.design.cores):
            n, _, _ = count_packets(row_lengths[part.start : part.stop], lanes, r)
            packets.append(n)
        return self.timing_from_packets(packets, nnz=int(row_lengths.sum()))

    def timing_from_matrix(self, bscsr_matrix) -> AcceleratorTiming:
        """Timing from an encoded :class:`repro.formats.bscsr.BSCSRMatrix`."""
        packets = [s.n_packets for s in bscsr_matrix.streams]
        return self.timing_from_packets(packets, nnz=bscsr_matrix.nnz)

    def timing_estimate_from_row_lengths(
        self, row_lengths: np.ndarray
    ) -> AcceleratorTiming:
        """Vectorised paper-scale timing via the closed-form packet estimate.

        Exact whenever the rows-per-packet budget never forces an early
        packet close (true for the paper's 20-40 nnz/row workloads; tests
        cross-check against :meth:`timing_from_row_lengths`).  Use this for
        the N = 10^7-scale Figure 5/6 sweeps where the exact greedy counter
        would walk tens of millions of rows in Python.
        """
        row_lengths = np.asarray(row_lengths, dtype=np.int64)
        from repro.core.partition import partition_rows

        lanes = self.design.layout.lanes
        cumulative = np.concatenate([[0], np.cumsum(row_lengths)])
        empty_cumulative = np.concatenate([[0], np.cumsum(row_lengths == 0)])
        packets = []
        for part in partition_rows(len(row_lengths), self.design.cores):
            nnz_part = int(cumulative[part.stop] - cumulative[part.start])
            empties = int(empty_cumulative[part.stop] - empty_cumulative[part.start])
            packets.append(-(-(nnz_part + empties) // lanes))
        return self.timing_from_packets(packets, nnz=int(row_lengths.sum()))

    def ideal_throughput_nnz_per_s(self) -> float:
        """Upper-bound throughput with perfectly dense packets (roofline point)."""
        return self.design.cores * self.core_model.throughput_nnz_per_s()
