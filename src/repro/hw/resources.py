"""Parametric FPGA resource model (Table II).

Structure of the model (constants fitted against Table II, see
:mod:`repro.hw.calibration`):

* **LUT/FF** — ``shell + cores x (base + unit x B x (V + 32) x float_factor)``:
  per-lane datapath width drives the scatter/aggregate logic.  The per-core
  part is additionally scaled by the ``r`` (rows-per-packet) budget — the
  paper reports up to 50% core-resource savings from tracking only
  ``B/4 < r < B/2`` rows per packet (Section IV-B); the Table II anchors
  use ``r = ceil(B/2)``.
* **BRAM** — shell/interconnect dominated plus small per-core FIFOs
  (utilisation is a flat 20% across all four designs).
* **URAM** — ``ceil(B/2)`` replicas of ``x`` plus two control banks per core
  (exactly reproduces 33/30/27/26%).
* **DSP** — per-lane multiplier cost by value width plus a per-core base.

Fit quality (asserted by tests): every Table II utilisation within ±2
percentage points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import CapacityError, ConfigurationError
from repro.hw.calibration import CALIBRATION, CalibrationConstants

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.hw.design import AcceleratorDesign

__all__ = [
    "ResourceUsage",
    "ResourceModel",
    "U280_AVAILABLE",
    "estimate_core_resources",
    "estimate_total_resources",
    "max_cores_placeable",
]

_X_BITS = 32  # query-vector entries are stored at 32 bits (Section IV-A)


@dataclass(frozen=True)
class ResourceUsage:
    """A bundle of the five FPGA resource types."""

    lut: float
    ff: float
    bram: float
    uram: float
    dsp: float

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            lut=self.lut + other.lut,
            ff=self.ff + other.ff,
            bram=self.bram + other.bram,
            uram=self.uram + other.uram,
            dsp=self.dsp + other.dsp,
        )

    def scale(self, factor: float) -> "ResourceUsage":
        """Multiply every resource by ``factor`` (e.g. core count)."""
        return ResourceUsage(
            lut=self.lut * factor,
            ff=self.ff * factor,
            bram=self.bram * factor,
            uram=self.uram * factor,
            dsp=self.dsp * factor,
        )

    def utilization(self, available: "ResourceUsage") -> dict[str, float]:
        """Fractional utilisation against an availability budget."""
        return {
            "LUT": self.lut / available.lut,
            "FF": self.ff / available.ff,
            "BRAM": self.bram / available.bram,
            "URAM": self.uram / available.uram,
            "DSP": self.dsp / available.dsp,
        }

    def fits(self, available: "ResourceUsage") -> bool:
        """True when every resource fits the budget."""
        return all(v <= 1.0 for v in self.utilization(available).values())


#: Resources of the xcu280-fsvh2892-2L-e as reported in Table II.
U280_AVAILABLE = ResourceUsage(
    lut=1_097_419, ff=2_180_971, bram=1_812, uram=960, dsp=9_020
)


def _dsp_per_lane_fixed(value_bits: int) -> float:
    """DSP48E2 slices per fixed-point lane multiplier (val x 32-bit x).

    Piecewise in the value width; anchored at the paper's 20/25/32-bit
    design points (1/2/4 DSP per lane once the per-core base is removed).
    """
    if value_bits <= 20:
        return 1.0
    if value_bits <= 25:
        return 2.0
    if value_bits <= 27:
        return 3.0
    return 4.0


@dataclass(frozen=True)
class ResourceModel:
    """Resource estimator driven by a calibration registry."""

    constants: CalibrationConstants = CALIBRATION
    available: ResourceUsage = U280_AVAILABLE

    def core(self, design: "AcceleratorDesign") -> ResourceUsage:
        """Estimated resources of a single core."""
        c = self.constants
        lanes = design.layout.lanes
        value_bits = design.value_bits
        is_float = design.arithmetic == "float"

        lane_bits = lanes * (value_bits + _X_BITS)
        lut = c.lut_core_base + c.lut_per_lane_bit * lane_bits * (
            c.lut_float_factor if is_float else 1.0
        )
        ff = c.ff_core_base + c.ff_per_lane_bit * lane_bits * (
            c.ff_float_factor if is_float else 1.0
        )
        row_scale = self._row_budget_scale(design)
        lut *= row_scale
        ff *= row_scale

        uram_blocks = design.uram_replicas * self._uram_blocks_per_replica(design) + 2
        dsp_lane = (
            c.dsp_float_per_lane if is_float else _dsp_per_lane_fixed(value_bits)
        )
        return ResourceUsage(
            lut=lut,
            ff=ff,
            bram=c.bram_per_core,
            uram=float(uram_blocks),
            dsp=c.dsp_core_base + dsp_lane * lanes,
        )

    def shell(self) -> ResourceUsage:
        """Static platform/interconnect resources (independent of cores)."""
        c = self.constants
        return ResourceUsage(
            lut=c.lut_shell, ff=c.ff_shell, bram=c.bram_shell, uram=0.0, dsp=0.0
        )

    def total(self, design: "AcceleratorDesign") -> ResourceUsage:
        """Shell plus all cores."""
        return self.shell() + self.core(design).scale(design.cores)

    def utilization(self, design: "AcceleratorDesign") -> dict[str, float]:
        """Fractional utilisation of the full design (Table II's rows)."""
        return self.total(design).utilization(self.available)

    def max_cores(self, design: "AcceleratorDesign") -> int:
        """Largest core count fitting the device (resource-wise).

        The paper notes the HBM channel count (32), not area, is the binding
        constraint for its low-profile cores; this lets tests verify that.
        """
        core = self.core(design)
        shell = self.shell()
        budget = {
            "lut": self.available.lut - shell.lut,
            "ff": self.available.ff - shell.ff,
            "bram": self.available.bram - shell.bram,
            "uram": self.available.uram - shell.uram,
            "dsp": self.available.dsp - shell.dsp,
        }
        per_core = {
            "lut": core.lut,
            "ff": core.ff,
            "bram": core.bram,
            "uram": core.uram,
            "dsp": core.dsp,
        }
        limits = [
            math.floor(budget[k] / per_core[k])
            for k in budget
            if per_core[k] > 0
        ]
        if not limits:
            raise ConfigurationError("core consumes no resources; model misuse")
        return max(0, min(limits))

    def check_fits(self, design: "AcceleratorDesign") -> None:
        """Raise :class:`CapacityError` when the design exceeds the device."""
        total = self.total(design)
        if not total.fits(self.available):
            util = total.utilization(self.available)
            over = {k: f"{v:.0%}" for k, v in util.items() if v > 1.0}
            raise CapacityError(
                f"design '{design.name}' does not fit the device: {over}"
            )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _row_budget_scale(self, design: "AcceleratorDesign") -> float:
        """LUT/FF scaling with the rows-per-packet budget ``r``.

        Anchored so the Table II designs (r = ceil(B/2)) scale by 1.0;
        a full r = B design costs 1.5x, and r = B/4 costs 0.75x — i.e.
        "resource savings up to 50%" going from r = B to r = B/4.
        """
        lanes = design.layout.lanes
        anchor_r = math.ceil(lanes / 2)
        r = design.effective_rows_per_packet
        frac = self.constants.row_logic_fraction
        return (1.0 - frac) + frac * (r / anchor_r)

    def _uram_blocks_per_replica(self, design: "AcceleratorDesign") -> int:
        """URAM blocks per replica of x (1 for the paper's M <= 1024)."""
        replica_bytes = math.ceil(design.max_columns * _X_BITS / 8)
        return max(1, -(-replica_bytes // 36864))


_DEFAULT_MODEL = ResourceModel()


def estimate_core_resources(design: "AcceleratorDesign") -> ResourceUsage:
    """Single-core resources under the default calibration."""
    return _DEFAULT_MODEL.core(design)


def estimate_total_resources(design: "AcceleratorDesign") -> ResourceUsage:
    """Full-design resources under the default calibration."""
    return _DEFAULT_MODEL.total(design)


def max_cores_placeable(design: "AcceleratorDesign") -> int:
    """Area-limited core count under the default calibration."""
    return _DEFAULT_MODEL.max_cores(design)
