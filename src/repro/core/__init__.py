"""The paper's primary contribution: approximate partitioned Top-K SpMV.

Modules
-------
``reference``
    Exact (golden) Top-K SpMV used as ground truth everywhere.
``partition``
    Row partitioning across cores (Section III-A).
``topk_tracker``
    The k-entry argmin scratchpad each core keeps in LUTs (Section IV-B).
``approx``
    The partitioned approximation: per-partition top-k, merged (Figure 2).
``precision_model``
    Expected-precision theory + Monte Carlo estimation (Eq. 1, Table I).
``dataflow``
    Functional simulation of Algorithm 1 over BS-CSR packet streams.
``kernels``
    Pluggable batch-query SpMV backends (gather / streaming / contraction),
    all bit-identical to the reference dataflow.
``collection``
    The compiled query-independent artifact: one build pipeline producing
    partition streams, stream plans and a persistable ``.npz`` container.
``segments``
    Mutable segmented collections: LSM-style incremental ingest, tombstone
    deletes, sealing and compaction over immutable compiled segments.
``engine``
    High-level public API tying formats, cores and hardware models together.
"""

from repro.core.reference import TopKResult, exact_topk_spmv, topk_from_scores
from repro.core.partition import RowPartition, partition_rows, partition_matrix
from repro.core.topk_tracker import TopKTracker
from repro.core.approx import approximate_topk_spmv, merge_topk_candidates
from repro.core.precision_model import (
    expected_precision,
    expected_precision_union_bound,
    estimate_precision_monte_carlo,
    MonteCarloEstimate,
)
from repro.core.dataflow import DataflowCore, simulate_dataflow
from repro.core.kernels import available_kernels, get_kernel, resolve_kernel_name
from repro.core.collection import CompiledCollection, compile_collection
from repro.core.segments import Segment, SegmentedCollection
from repro.core.engine import TopKSpmvEngine, EngineResult, BatchResult
from repro.core.adaptive import WorkloadProfile, DesignChoice, select_design

__all__ = [
    "TopKResult",
    "exact_topk_spmv",
    "topk_from_scores",
    "RowPartition",
    "partition_rows",
    "partition_matrix",
    "TopKTracker",
    "approximate_topk_spmv",
    "merge_topk_candidates",
    "expected_precision",
    "expected_precision_union_bound",
    "estimate_precision_monte_carlo",
    "MonteCarloEstimate",
    "DataflowCore",
    "simulate_dataflow",
    "available_kernels",
    "get_kernel",
    "resolve_kernel_name",
    "CompiledCollection",
    "compile_collection",
    "Segment",
    "SegmentedCollection",
    "TopKSpmvEngine",
    "EngineResult",
    "BatchResult",
    "WorkloadProfile",
    "DesignChoice",
    "select_design",
]
