"""Functional simulation of the core's 4-stage dataflow (Algorithm 1).

Each core consumes its BS-CSR packet stream one packet per cycle through
four pipelined stages (Section IV-B):

1. **Scatter** — read the packet's B lanes, fetch ``x[idx]`` from the
   replicated URAM copies, compute B point-wise products.
2. **Aggregation** — sum products between consecutive ``ptr`` boundaries
   (per-row partial sums within the packet).
3. **Summary** — cross-packet bookkeeping: merge the carried partial sum of
   a row spanning packets (``new_row`` bit) and mark finished rows.
4. **Top-K update** — offer every finished row to the k-entry argmin
   scratchpad (:class:`repro.core.topk_tracker.TopKTracker`).

The simulation is *functional* (value-exact, packet-ordered); cycle timing
lives in :mod:`repro.hw.fpga_core`.  Arithmetic faithfulness: fixed-point
designs accumulate exactly in hardware, which float64 reproduces for the
paper's formats and row lengths; the float32 design accumulates in float32,
reproduced here with NumPy float32 arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.reference import TopKResult
from repro.core.topk_tracker import TopKTracker
from repro.errors import ConfigurationError, SimulationError
from repro.formats.bscsr import BSCSRMatrix, BSCSRStream
from repro.utils.validation import check_positive_int

__all__ = ["DataflowStats", "DataflowCore", "simulate_dataflow", "simulate_multicore"]


@dataclass
class DataflowStats:
    """Counters collected while streaming packets through one core."""

    packets: int = 0
    rows_finished: int = 0
    tracker_accepts: int = 0
    max_rows_in_packet: int = 0
    spanning_rows: int = 0

    def merge(self, other: "DataflowStats") -> "DataflowStats":
        """Combine counters from another core (for whole-accelerator totals)."""
        return DataflowStats(
            packets=self.packets + other.packets,
            rows_finished=self.rows_finished + other.rows_finished,
            tracker_accepts=self.tracker_accepts + other.tracker_accepts,
            max_rows_in_packet=max(self.max_rows_in_packet, other.max_rows_in_packet),
            spanning_rows=self.spanning_rows + other.spanning_rows,
        )


class DataflowCore:
    """One FPGA core: streams a BS-CSR partition and tracks its local top-k."""

    def __init__(
        self,
        local_k: int,
        x: np.ndarray,
        accumulate_dtype: np.dtype = np.float64,
    ):
        """
        Parameters
        ----------
        local_k:
            Scratchpad depth ``k`` (the paper uses 8).
        x:
            The dense query vector *as stored in URAM* — already quantised
            by the caller to the design's query precision.
        accumulate_dtype:
            ``np.float64`` models exact fixed-point accumulation;
            ``np.float32`` models the F32 design's floating-point adders.
        """
        self.local_k = check_positive_int(local_k, "local_k")
        self.x = np.asarray(x, dtype=np.float64)
        if self.x.ndim != 1:
            raise ConfigurationError(f"x must be 1-D, got shape {self.x.shape}")
        dtype = np.dtype(accumulate_dtype)
        if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ConfigurationError(
                f"accumulate_dtype must be float64 or float32, got {dtype}"
            )
        self.accumulate_dtype = dtype

    def run(self, stream: BSCSRStream) -> tuple[TopKResult, DataflowStats]:
        """Stream every packet through the 4 stages; return local top-k and stats.

        Local result indices are partition-local row ids.
        """
        if stream.n_cols > len(self.x):
            raise ConfigurationError(
                f"stream has {stream.n_cols} columns but URAM holds "
                f"{len(self.x)} entries of x"
            )
        acc = self.accumulate_dtype
        tracker = TopKTracker(self.local_k)
        stats = DataflowStats()
        values = stream.values().astype(acc)
        x = self.x.astype(acc)

        # Lanes of the row currently being accumulated (possibly spanning
        # packets).  The row's value is a single balanced reduction over all
        # its lanes — the hardware's adder tree; numerically identical to
        # the reduceat segments of :meth:`run_fast`.
        open_row_lanes: list[np.ndarray] = []
        current_row = 0
        for p in range(stream.n_packets):
            stats.packets += 1
            # Stage 1 — scatter: B parallel URAM reads and multipliers.
            products = values[p] * x[stream.idx[p]]
            # Stage 2/3 — aggregate between boundaries, handle the carry.
            bounds = stream.ptr[p]
            valid = bounds[bounds > 0].astype(np.int64)
            if stream.new_row[p]:
                open_row_lanes = []  # previous packet's tail was padding
            else:
                stats.spanning_rows += 1
            stats.max_rows_in_packet = max(stats.max_rows_in_packet, len(valid))
            prev = 0
            for b in valid:
                open_row_lanes.append(products[prev : int(b)])
                row_lanes = np.concatenate(open_row_lanes)
                row_value = np.add.reduceat(row_lanes, [0])[0]
                # Stage 4 — Top-K scratchpad update for the finished row.
                stats.rows_finished += 1
                stats.tracker_accepts += tracker.insert(current_row, float(row_value))
                open_row_lanes = []
                current_row += 1
                prev = int(b)
            open_row_lanes.append(products[prev:])

        if current_row != stream.n_rows:
            raise SimulationError(
                f"dataflow finished {current_row} rows, stream declares {stream.n_rows}"
            )
        return tracker.result(), stats

    def run_fast(self, stream: BSCSRStream) -> tuple[TopKResult, DataflowStats]:
        """Vectorised equivalent of :meth:`run` (same results, same tracker order).

        Exploits two exactness properties of the format: padding lanes carry
        value 0 (contribute nothing to any segment) and row boundaries are
        strictly increasing global lane positions, so per-row values are
        contiguous segment sums over the flattened lane stream —
        ``np.add.reduceat`` in stream order reproduces the hardware's
        accumulation order for both float64 and float32 models.  The Top-K
        scratchpad is still applied sequentially (its replace-on-tie
        behaviour is order-dependent).  Tests assert equality with
        :meth:`run` packet by packet.
        """
        if stream.n_cols > len(self.x):
            raise ConfigurationError(
                f"stream has {stream.n_cols} columns but URAM holds "
                f"{len(self.x)} entries of x"
            )
        acc = self.accumulate_dtype
        tracker = TopKTracker(self.local_k)
        stats = DataflowStats(packets=stream.n_packets)
        if stream.n_packets == 0:
            if stream.n_rows != 0:
                raise SimulationError(
                    f"empty stream declares {stream.n_rows} rows"
                )
            return tracker.result(), stats

        lanes = stream.layout.lanes
        values = stream.values().astype(acc)
        x = self.x.astype(acc)
        products = (values * x[stream.idx])

        bounds = stream.ptr.astype(np.int64)
        valid_mask = bounds > 0
        # Drop padding lanes (after the last boundary of a packet whose
        # successor starts a new row, and the final packet's tail).  The
        # zeros would not change any sum's value, but they would change the
        # pairwise-reduction tree shape and therefore the float32 rounding —
        # the reference path never feeds them to the adder tree.
        last_bound = bounds.max(axis=1)
        closes = np.ones(stream.n_packets, dtype=bool)
        if stream.n_packets > 1:
            closes[:-1] = stream.new_row[1:]
        kept_per_packet = np.where(closes, last_bound, lanes)
        keep = np.arange(lanes)[None, :] < kept_per_packet[:, None]
        products = products[keep]

        cum_kept = np.concatenate([[0], np.cumsum(kept_per_packet)])
        packet_of_bound, _ = np.nonzero(valid_mask)
        ends = cum_kept[packet_of_bound] + bounds[valid_mask]
        if len(ends) != stream.n_rows:
            raise SimulationError(
                f"stream has {len(ends)} row boundaries, declares {stream.n_rows} rows"
            )
        stats.rows_finished = int(len(ends))
        stats.max_rows_in_packet = int(valid_mask.sum(axis=1).max(initial=0))
        stats.spanning_rows = int((~stream.new_row[1:]).sum()) if stream.n_packets > 1 else 0

        starts = np.concatenate([[0], ends[:-1]])
        row_values = np.add.reduceat(products, starts).astype(acc)
        stats.tracker_accepts = tracker.insert_many(
            np.arange(stream.n_rows, dtype=np.int64), row_values.astype(np.float64)
        )
        return tracker.result(), stats


def simulate_dataflow(
    stream: BSCSRStream,
    x: np.ndarray,
    local_k: int,
    accumulate_dtype: np.dtype = np.float64,
    fast: bool = True,
) -> tuple[TopKResult, DataflowStats]:
    """Run one partition stream through a fresh core (convenience wrapper).

    ``fast`` selects the vectorised implementation (identical results; the
    per-packet reference path exists for hardware-faithful inspection).
    """
    core = DataflowCore(local_k=local_k, x=x, accumulate_dtype=accumulate_dtype)
    return core.run_fast(stream) if fast else core.run(stream)


def simulate_multicore(
    matrix: BSCSRMatrix,
    x: np.ndarray,
    local_k: int,
    accumulate_dtype: np.dtype = np.float64,
    fast: bool = True,
) -> tuple[list[TopKResult], DataflowStats]:
    """Run every partition through its own core; globalise local row ids.

    Returns the per-core candidate lists (global ids) and merged statistics.
    The final merge/truncation to K is the host's job — see
    :func:`repro.core.approx.merge_topk_candidates`.
    """
    results: list[TopKResult] = []
    totals = DataflowStats()
    for stream, offset in zip(matrix.streams, matrix.row_offsets):
        local, stats = simulate_dataflow(
            stream, x, local_k, accumulate_dtype, fast=fast
        )
        results.append(
            TopKResult(indices=local.indices + int(offset), values=local.values)
        )
        totals = totals.merge(stats)
    return results, totals
