"""Functional simulation of the core's 4-stage dataflow (Algorithm 1).

Each core consumes its BS-CSR packet stream one packet per cycle through
four pipelined stages (Section IV-B):

1. **Scatter** — read the packet's B lanes, fetch ``x[idx]`` from the
   replicated URAM copies, compute B point-wise products.
2. **Aggregation** — sum products between consecutive ``ptr`` boundaries
   (per-row partial sums within the packet).
3. **Summary** — cross-packet bookkeeping: merge the carried partial sum of
   a row spanning packets (``new_row`` bit) and mark finished rows.
4. **Top-K update** — offer every finished row to the k-entry argmin
   scratchpad (:class:`repro.core.topk_tracker.TopKTracker`).

The simulation is *functional* (value-exact, packet-ordered); cycle timing
lives in :mod:`repro.hw.fpga_core`.  Arithmetic faithfulness: fixed-point
designs accumulate exactly in hardware, which float64 reproduces for the
paper's formats and row lengths; the float32 design accumulates in float32,
reproduced here with NumPy float32 arithmetic.

The *batched* multi-query hot path lives in :mod:`repro.core.kernels` as a
set of pluggable backends (reference gather, fused streaming, CSR
contraction), all locked bit-identical to :meth:`DataflowCore.run_fast`;
:func:`simulate_multicore_batch` selects one via its ``kernel`` argument,
the ``REPRO_KERNEL`` environment variable, or the registry default.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.reference import TopKResult
from repro.core.topk_tracker import TopKTracker
from repro.errors import ConfigurationError, SimulationError
from repro.formats.bscsr import BSCSRMatrix, BSCSRStream
from repro.utils.validation import check_positive_int

__all__ = [
    "DataflowStats",
    "DataflowCore",
    "StreamPlan",
    "plan_stream",
    "simulate_dataflow",
    "simulate_multicore",
    "simulate_multicore_batch",
]


@dataclass
class DataflowStats:
    """Counters collected while streaming packets through one core."""

    packets: int = 0
    rows_finished: int = 0
    tracker_accepts: int = 0
    max_rows_in_packet: int = 0
    spanning_rows: int = 0

    def merge(self, other: "DataflowStats") -> "DataflowStats":
        """Combine counters from another core (for whole-accelerator totals)."""
        return DataflowStats(
            packets=self.packets + other.packets,
            rows_finished=self.rows_finished + other.rows_finished,
            tracker_accepts=self.tracker_accepts + other.tracker_accepts,
            max_rows_in_packet=max(self.max_rows_in_packet, other.max_rows_in_packet),
            spanning_rows=self.spanning_rows + other.spanning_rows,
        )


class DataflowCore:
    """One FPGA core: streams a BS-CSR partition and tracks its local top-k."""

    def __init__(
        self,
        local_k: int,
        x: np.ndarray,
        accumulate_dtype: np.dtype = np.float64,
    ):
        """
        Parameters
        ----------
        local_k:
            Scratchpad depth ``k`` (the paper uses 8).
        x:
            The dense query vector *as stored in URAM* — already quantised
            by the caller to the design's query precision.  A ``(Q, n_cols)``
            block of queries is accepted for :meth:`run_fast_batch`; the
            single-query paths (:meth:`run`, :meth:`run_fast`) require 1-D.
        accumulate_dtype:
            ``np.float64`` models exact fixed-point accumulation;
            ``np.float32`` models the F32 design's floating-point adders.
        """
        self.local_k = check_positive_int(local_k, "local_k")
        self.x = np.asarray(x, dtype=np.float64)
        if self.x.ndim not in (1, 2):
            raise ConfigurationError(f"x must be 1-D or 2-D, got shape {self.x.shape}")
        dtype = np.dtype(accumulate_dtype)
        if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ConfigurationError(
                f"accumulate_dtype must be float64 or float32, got {dtype}"
            )
        self.accumulate_dtype = dtype

    def run(self, stream: BSCSRStream) -> tuple[TopKResult, DataflowStats]:
        """Stream every packet through the 4 stages; return local top-k and stats.

        Local result indices are partition-local row ids.
        """
        x_uram = self._single_query(stream)
        acc = self.accumulate_dtype
        tracker = TopKTracker(self.local_k)
        stats = DataflowStats()
        values = stream.values().astype(acc)
        x = x_uram.astype(acc)

        # Lanes of the row currently being accumulated (possibly spanning
        # packets).  The row's value is a single balanced reduction over all
        # its lanes — the hardware's adder tree; numerically identical to
        # the reduceat segments of :meth:`run_fast`.
        open_row_lanes: list[np.ndarray] = []
        current_row = 0
        for p in range(stream.n_packets):
            stats.packets += 1
            # Stage 1 — scatter: B parallel URAM reads and multipliers.
            products = values[p] * x[stream.idx[p]]
            # Stage 2/3 — aggregate between boundaries, handle the carry.
            bounds = stream.ptr[p]
            valid = bounds[bounds > 0].astype(np.int64)
            if stream.new_row[p]:
                open_row_lanes = []  # previous packet's tail was padding
            else:
                stats.spanning_rows += 1
            stats.max_rows_in_packet = max(stats.max_rows_in_packet, len(valid))
            prev = 0
            for b in valid:
                open_row_lanes.append(products[prev : int(b)])
                row_lanes = np.concatenate(open_row_lanes)
                row_value = np.add.reduceat(row_lanes, [0])[0]
                # Stage 4 — Top-K scratchpad update for the finished row.
                stats.rows_finished += 1
                stats.tracker_accepts += tracker.insert(current_row, float(row_value))
                open_row_lanes = []
                current_row += 1
                prev = int(b)
            open_row_lanes.append(products[prev:])

        if current_row != stream.n_rows:
            raise SimulationError(
                f"dataflow finished {current_row} rows, stream declares {stream.n_rows}"
            )
        return tracker.result(), stats

    def run_fast(self, stream: BSCSRStream) -> tuple[TopKResult, DataflowStats]:
        """Vectorised equivalent of :meth:`run` (same results, same tracker order).

        Exploits two exactness properties of the format: padding lanes carry
        value 0 (contribute nothing to any segment) and row boundaries are
        strictly increasing global lane positions, so per-row values are
        contiguous segment sums over the flattened lane stream —
        ``np.add.reduceat`` in stream order reproduces the hardware's
        accumulation order for both float64 and float32 models.  The Top-K
        scratchpad is still applied sequentially (its replace-on-tie
        behaviour is order-dependent).  Tests assert equality with
        :meth:`run` packet by packet.
        """
        x_uram = self._single_query(stream)
        acc = self.accumulate_dtype
        tracker = TopKTracker(self.local_k)
        stats = DataflowStats(packets=stream.n_packets)
        if stream.n_packets == 0:
            if stream.n_rows != 0:
                raise SimulationError(
                    f"empty stream declares {stream.n_rows} rows"
                )
            return tracker.result(), stats

        lanes = stream.layout.lanes
        values = stream.values().astype(acc)
        x = x_uram.astype(acc)
        products = (values * x[stream.idx])

        bounds = stream.ptr.astype(np.int64)
        valid_mask = bounds > 0
        # Drop padding lanes (after the last boundary of a packet whose
        # successor starts a new row, and the final packet's tail).  The
        # zeros would not change any sum's value, but they would change the
        # pairwise-reduction tree shape and therefore the float32 rounding —
        # the reference path never feeds them to the adder tree.
        last_bound = bounds.max(axis=1)
        closes = np.ones(stream.n_packets, dtype=bool)
        if stream.n_packets > 1:
            closes[:-1] = stream.new_row[1:]
        kept_per_packet = np.where(closes, last_bound, lanes)
        keep = np.arange(lanes)[None, :] < kept_per_packet[:, None]
        products = products[keep]

        cum_kept = np.concatenate([[0], np.cumsum(kept_per_packet)])
        packet_of_bound, _ = np.nonzero(valid_mask)
        ends = cum_kept[packet_of_bound] + bounds[valid_mask]
        if len(ends) != stream.n_rows:
            raise SimulationError(
                f"stream has {len(ends)} row boundaries, declares {stream.n_rows} rows"
            )
        stats.rows_finished = int(len(ends))
        stats.max_rows_in_packet = int(valid_mask.sum(axis=1).max(initial=0))
        stats.spanning_rows = int((~stream.new_row[1:]).sum()) if stream.n_packets > 1 else 0

        starts = np.concatenate([[0], ends[:-1]])
        row_values = np.add.reduceat(products, starts).astype(acc)
        stats.tracker_accepts = tracker.insert_many(
            np.arange(stream.n_rows, dtype=np.int64), row_values.astype(np.float64)
        )
        return tracker.result(), stats

    def run_fast_batch(
        self, stream: BSCSRStream, plan: "StreamPlan | None" = None
    ) -> tuple[list[TopKResult], list[DataflowStats]]:
        """Stream the partition once against a ``(Q, n_cols)`` query block.

        Computes every query's row values with one broadcast multiply and one
        ``np.add.reduceat`` sweep over the shared lane stream, then applies
        each query's Top-K scratchpad sequentially.  Per query, indices and
        float-bit values are identical to :meth:`run_fast` on that query
        alone: the kept-lane products are the same elementwise float32/64
        operations, and a 2-D ``reduceat`` along axis 1 reduces each row's
        contiguous segments through the same inner loop as the 1-D call
        (the batched-dataflow property suite asserts bitwise equality).

        ``plan`` caches the query-independent stream structure (kept lanes,
        segment starts, structural counters) so serving layers can amortise
        it across batches; omit it to derive the plan on the fly.
        """
        X = self._query_block(stream)
        if plan is None:
            plan = plan_stream(stream)
        results, accepts = _run_block_on_plan(
            X, plan, self.accumulate_dtype, self.local_k
        )
        stats_list = [
            replace(plan.stats, tracker_accepts=int(a)) for a in accepts
        ]
        return results, stats_list

    # ------------------------------------------------------------------ #
    # Query-shape plumbing
    # ------------------------------------------------------------------ #
    def _single_query(self, stream: BSCSRStream) -> np.ndarray:
        if self.x.ndim != 1:
            raise ConfigurationError(
                f"this path takes one 1-D query, got a block of shape "
                f"{self.x.shape}; use run_fast_batch"
            )
        if stream.n_cols > len(self.x):
            raise ConfigurationError(
                f"stream has {stream.n_cols} columns but URAM holds "
                f"{len(self.x)} entries of x"
            )
        return self.x

    def _query_block(self, stream: BSCSRStream) -> np.ndarray:
        X = np.atleast_2d(self.x)
        if stream.n_cols > X.shape[1]:
            raise ConfigurationError(
                f"stream has {stream.n_cols} columns but URAM holds "
                f"{X.shape[1]} entries per query"
            )
        return X


@dataclass(frozen=True)
class StreamPlan:
    """Query-independent structure of one BS-CSR stream.

    Everything :meth:`DataflowCore.run_fast` derives from the packet stream
    *before* touching the query vector: the kept (non-padding) lanes with
    their decoded values and column indices, the per-row reduction segment
    starts, and the structural counters.  Building the plan once and reusing
    it across queries/batches is what makes the batched path amortise the
    stream walk.
    """

    n_rows: int
    kept_idx: np.ndarray
    kept_values: np.ndarray
    starts: np.ndarray
    stats: DataflowStats


def plan_stream(stream: BSCSRStream) -> StreamPlan:
    """Derive a :class:`StreamPlan` (the structure half of :meth:`run_fast`).

    Mirrors the fast path's lane bookkeeping exactly: padding lanes are
    dropped (they would change the float32 reduction tree), row boundaries
    become ``reduceat`` segment starts in stream order.
    """
    stats = DataflowStats(packets=stream.n_packets)
    empty = StreamPlan(
        n_rows=0,
        kept_idx=np.empty(0, dtype=np.int64),
        kept_values=np.empty(0, dtype=np.float64),
        starts=np.empty(0, dtype=np.int64),
        stats=stats,
    )
    if stream.n_packets == 0:
        if stream.n_rows != 0:
            raise SimulationError(f"empty stream declares {stream.n_rows} rows")
        return empty

    lanes = stream.layout.lanes
    bounds = stream.ptr.astype(np.int64)
    valid_mask = bounds > 0
    last_bound = bounds.max(axis=1)
    closes = np.ones(stream.n_packets, dtype=bool)
    if stream.n_packets > 1:
        closes[:-1] = stream.new_row[1:]
    kept_per_packet = np.where(closes, last_bound, lanes)
    keep = np.arange(lanes)[None, :] < kept_per_packet[:, None]

    cum_kept = np.concatenate([[0], np.cumsum(kept_per_packet)])
    packet_of_bound, _ = np.nonzero(valid_mask)
    ends = cum_kept[packet_of_bound] + bounds[valid_mask]
    if len(ends) != stream.n_rows:
        raise SimulationError(
            f"stream has {len(ends)} row boundaries, declares {stream.n_rows} rows"
        )
    stats.rows_finished = int(len(ends))
    stats.max_rows_in_packet = int(valid_mask.sum(axis=1).max(initial=0))
    stats.spanning_rows = int((~stream.new_row[1:]).sum()) if stream.n_packets > 1 else 0
    if stream.n_rows == 0:
        return replace(empty, stats=stats)

    return StreamPlan(
        n_rows=stream.n_rows,
        kept_idx=stream.idx[keep].astype(np.int64),
        kept_values=stream.values()[keep],
        starts=np.concatenate([[0], ends[:-1]]).astype(np.int64),
        stats=stats,
    )


def _run_block_on_plan(
    X: np.ndarray,
    plan: "StreamPlan",
    accumulate_dtype: np.dtype,
    local_k: int,
) -> tuple[list[TopKResult], np.ndarray]:
    """One stream against a query block: per-query top-k + accept counts.

    Thin compatibility delegate; the implementation is the reference gather
    kernel (:func:`repro.core.kernels.gather.run_plan_gather`).
    """
    from repro.core.kernels.gather import run_plan_gather

    return run_plan_gather(X, plan, accumulate_dtype, local_k)


def _batch_scratchpads(
    row_values: np.ndarray, local_k: int
) -> tuple[list[TopKResult], np.ndarray]:
    """Every query's Top-K scratchpad over one partition's finished rows.

    Thin compatibility delegate for
    :func:`repro.core.kernels.scratchpad.batch_scratchpads` — bit-identical
    to sequential per-query :class:`TopKTracker` inserts in row order,
    including NaN/±inf row values (a NaN block takes a sequential path that
    mirrors the tracker operation for operation).
    """
    from repro.core.kernels.scratchpad import batch_scratchpads

    return batch_scratchpads(row_values, local_k)


def simulate_dataflow(
    stream: BSCSRStream,
    x: np.ndarray,
    local_k: int,
    accumulate_dtype: np.dtype = np.float64,
    fast: bool = True,
) -> tuple[TopKResult, DataflowStats]:
    """Run one partition stream through a fresh core (convenience wrapper).

    ``fast`` selects the vectorised implementation (identical results; the
    per-packet reference path exists for hardware-faithful inspection).
    """
    core = DataflowCore(local_k=local_k, x=x, accumulate_dtype=accumulate_dtype)
    return core.run_fast(stream) if fast else core.run(stream)


def simulate_multicore(
    matrix: BSCSRMatrix,
    x: np.ndarray,
    local_k: int,
    accumulate_dtype: np.dtype = np.float64,
    fast: bool = True,
    row_map: "np.ndarray | None" = None,
) -> tuple[list[TopKResult], DataflowStats]:
    """Run every partition through its own core; globalise local row ids.

    ``row_map`` translates stream-global positions to original row ids for
    placed (row-permuted) collections — candidates leave this function in
    collection space either way, so placement never leaks downstream.

    Returns the per-core candidate lists (global ids) and merged statistics.
    The final merge/truncation to K is the host's job — see
    :func:`repro.core.approx.merge_topk_candidates`.
    """
    results: list[TopKResult] = []
    totals = DataflowStats()
    for stream, offset in zip(matrix.streams, matrix.row_offsets):
        local, stats = simulate_dataflow(
            stream, x, local_k, accumulate_dtype, fast=fast
        )
        indices = local.indices + int(offset)
        if row_map is not None:
            indices = row_map[indices]
        results.append(TopKResult(indices=indices, values=local.values))
        totals = totals.merge(stats)
    return results, totals


def simulate_multicore_batch(
    matrix: BSCSRMatrix,
    queries: np.ndarray,
    local_k: int,
    accumulate_dtype: np.dtype = np.float64,
    plans: "list[StreamPlan] | None" = None,
    kernel: "str | None" = None,
    n_workers: "int | str | None" = None,
    operand=None,
    query_chunk: "int | None" = None,
    executor: "str | None" = None,
    row_map: "np.ndarray | None" = None,
) -> tuple[list[list[TopKResult]], list[DataflowStats]]:
    """Run a ``(Q, n_cols)`` query block through every partition's core.

    The vectorised counterpart of looping :func:`simulate_multicore` over the
    block's rows: each partition stream is walked once per batch and each
    query gets its own Top-K scratchpads in the same insert order.  The
    sweep itself runs on a pluggable kernel backend
    (:mod:`repro.core.kernels`); whichever backend executes, per query the
    candidate lists and merged stats are bit-identical to the sequential
    loop (asserted by ``tests/property/test_prop_batch_dataflow`` and
    ``tests/property/test_prop_kernels``).

    Parameters
    ----------
    matrix:
        The encoded multi-partition collection.
    queries:
        Query block, shape ``(Q, n_cols)`` (a single 1-D query is promoted).
    plans:
        Optional pre-built per-partition :class:`StreamPlan` list (must align
        with ``matrix.streams``); serving layers cache these across batches.
    kernel:
        Backend name (``"gather"``, ``"streaming"``, ``"contraction"``,
        ``"native"``, ``"auto"``); ``None`` defers to ``$REPRO_KERNEL`` or
        the default.  Backends that cannot guarantee the request's
        accumulation order fall back to the reference kernel automatically.
    n_workers:
        Partition-parallel worker count (``"auto"``/``0`` = all cores);
        ``None`` defers to ``$REPRO_KERNEL_WORKERS`` or 1.  Bit-neutral.
    executor:
        Partition executor, ``"thread"`` (default) or ``"process"``
        (spawned workers attaching the plan buffers through shared
        memory); ``None`` defers to ``$REPRO_KERNEL_EXECUTOR``.
        Bit-neutral — partitions are independent and results are
        reassembled in partition order.
    operand:
        Optional pre-lowered
        :class:`~repro.core.kernels.contraction.ContractionOperand` aligned
        with ``plans`` (compiled collections persist one).  When omitted it
        is lowered on the fly only if the contraction kernel is requested
        by name.
    query_chunk:
        Query chunk width override (``None`` = per-backend auto-tuning).
    row_map:
        Stream-position → original-row translation for placed (row-
        permuted) collections; candidate indices are mapped through it so
        results always leave in collection space.  ``None`` = identity.

    Returns
    -------
    results, stats:
        ``results[q]`` is query ``q``'s per-core candidate list with global
        row ids (freshly allocated index arrays — backend-internal buffers
        are never mutated); ``stats[q]`` its merged whole-accelerator
        counters.
    """
    from repro.core.kernels import (
        KernelRequest,
        codecs_grid_bits,
        lower_plans,
        resolve_executor,
        resolve_kernel_name,
        resolve_workers,
        run_kernel,
    )

    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    if queries.ndim != 2:
        raise ConfigurationError(
            f"queries must be a (Q, n_cols) block, got shape {queries.shape}"
        )
    if plans is None:
        plans = [plan_stream(s) for s in matrix.streams]
    elif len(plans) != len(matrix.streams):
        raise ConfigurationError(
            f"{len(plans)} plans supplied for {len(matrix.streams)} streams"
        )
    core = DataflowCore(local_k=local_k, x=queries, accumulate_dtype=accumulate_dtype)
    X = np.atleast_2d(core.x)
    for stream in matrix.streams:
        core._query_block(stream)  # per-stream column-count validation only

    kernel_name = resolve_kernel_name(kernel)
    if operand is None and kernel_name == "contraction":
        # Lowering is O(nnz): skip it when the codec grid set can never
        # pass the exactness gate (the backend then falls back exactly as
        # it would with an ungated operand).
        if codecs_grid_bits(s.codec for s in matrix.streams) is not None:
            operand = lower_plans(plans, [s.codec for s in matrix.streams])
    request = KernelRequest(
        X=X,
        plans=tuple(plans),
        accumulate_dtype=core.accumulate_dtype,
        local_k=core.local_k,
        operand=operand,
        n_workers=resolve_workers(n_workers),
        query_chunk=query_chunk,
        executor=resolve_executor(executor),
    )
    out = run_kernel(request, kernel_name)

    n_queries = queries.shape[0]
    results: list[list[TopKResult]] = [[] for _ in range(n_queries)]
    # The structural counters are query-independent: fold them across
    # partitions once instead of per query, then graft in each query's
    # tracker-accept total (exactly what a merge of per-stream stats yields).
    base = DataflowStats()
    accept_totals = np.zeros(n_queries, dtype=np.int64)
    for p, (offset, plan) in enumerate(zip(matrix.row_offsets, plans)):
        offset = int(offset)
        for q in range(n_queries):
            local = out.results[p][q]
            # Globalise into freshly allocated arrays: a backend may cache
            # or share its local result buffers (TopKResult is frozen, its
            # arrays are not), so in-place offsetting would be an aliasing
            # hazard.
            indices = local.indices + offset
            if row_map is not None:
                indices = row_map[indices]
            results[q].append(TopKResult(indices=indices, values=local.values))
        base = base.merge(plan.stats)
        accept_totals += out.accepts[p]
    totals = [replace(base, tracker_accepts=int(a)) for a in accept_totals]
    return results, totals
