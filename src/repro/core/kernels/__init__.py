"""Pluggable SpMV kernel backends for the batch-query hot path.

Modules
-------
``base``
    The :class:`KernelBackend` contract, the registry, request/output
    types, worker/chunk auto-tuning and the gated :func:`run_kernel`
    driver.
``executor``
    Partition execution: worker/executor resolution, the thread pool and
    the ``multiprocessing.shared_memory``-backed process pool
    (:class:`SharedPlanArena`) behind :func:`map_partitions`.
``scratchpad``
    :class:`BatchScratchpads` — every query's k-entry Top-K scratchpad,
    foldable block by block, bit-identical to sequential tracker inserts.
``gather``
    The reference gather + ``reduceat`` backend (the universal fallback).
``streaming``
    Fused row-block streaming with provable threshold skipping; never
    materialises ``(Q, n_rows)``.
``contraction``
    Collection-level SciPy CSR contraction, gated on provably exact
    (order-independent) float64 accumulation.
``native``
    The streaming fold as Numba ``@njit`` loops (optional dependency;
    falls back to ``streaming`` when Numba is absent), with per-query
    threshold skipping and a gated exact sequential-sum path.
``segmented``
    The multi-segment driver for mutable collections: per-segment kernel
    choice, one global Top-K fold with cross-segment threshold carry.

Selection: ``kernel=`` arguments on the engines /
``simulate_multicore_batch``, the ``--kernel`` CLI flag, or the
``REPRO_KERNEL`` environment variable; ``REPRO_KERNEL_WORKERS`` sets the
partition worker count (``auto``/``0`` = all cores) and
``REPRO_KERNEL_EXECUTOR`` picks ``thread`` (default) or ``process``
partition execution.  Every backend is locked bit-identical to
``DataflowCore.run_fast`` by ``tests/property/test_prop_kernels.py``;
backends that cannot guarantee a request's accumulation order fall back to
the reference kernel automatically.
"""

from repro.core.kernels.base import (
    DEFAULT_KERNEL,
    EXECUTOR_ENV_VAR,
    FALLBACK_KERNEL,
    KERNEL_ENV_VAR,
    WORKERS_ENV_VAR,
    KernelBackend,
    KernelOutput,
    KernelRequest,
    auto_query_chunk,
    available_kernels,
    get_kernel,
    map_partitions,
    register_kernel,
    resolve_executor,
    resolve_kernel_name,
    resolve_workers,
    run_kernel,
)
from repro.core.kernels.executor import SharedPlanArena
from repro.core.kernels.scratchpad import BatchScratchpads, batch_scratchpads
from repro.core.kernels.gather import GatherKernel, run_plan_gather
from repro.core.kernels.streaming import StreamingKernel
from repro.core.kernels.contraction import (
    ContractionKernel,
    ContractionOperand,
    codec_grid_bits,
    codecs_grid_bits,
    lower_plans,
)
from repro.core.kernels.native import (
    NativeKernel,
    native_available,
    reduceat_segment_sums,
)
from repro.core.kernels.auto import AutoKernel
from repro.core.kernels.segmented import (
    SegmentedOutput,
    run_segmented,
    select_segment_kernel,
)

__all__ = [
    "SegmentedOutput",
    "run_segmented",
    "select_segment_kernel",
    "KernelBackend",
    "KernelRequest",
    "KernelOutput",
    "register_kernel",
    "get_kernel",
    "available_kernels",
    "resolve_kernel_name",
    "resolve_workers",
    "resolve_executor",
    "auto_query_chunk",
    "map_partitions",
    "run_kernel",
    "SharedPlanArena",
    "BatchScratchpads",
    "batch_scratchpads",
    "GatherKernel",
    "run_plan_gather",
    "StreamingKernel",
    "ContractionKernel",
    "ContractionOperand",
    "codec_grid_bits",
    "codecs_grid_bits",
    "lower_plans",
    "NativeKernel",
    "native_available",
    "reduceat_segment_sums",
    "AutoKernel",
    "DEFAULT_KERNEL",
    "FALLBACK_KERNEL",
    "KERNEL_ENV_VAR",
    "WORKERS_ENV_VAR",
    "EXECUTOR_ENV_VAR",
]
