"""Fused streaming kernel: row blocks folded straight into the scratchpads.

Instead of materialising a partition's full ``(Q, n_rows)`` score block
(the gather kernel's working set), this backend walks each partition in
*row blocks* sized to a lane budget and fuses the three stages per block:

1. **bound** — before touching any lane, compare a provable per-block score
   upper bound against every query's current eviction threshold; when the
   whole block is below every threshold, the gather/multiply/reduce for it
   is skipped entirely (the rows "never touch memory");
2. **gather+reduce** — surviving blocks slice the kept-lane stream
   contiguously (row segments are consecutive lanes), multiply in place and
   reduce per row with ``np.add.reduceat`` — the same elementwise float ops
   on the same values as the reference kernel, hence the same bits;
3. **fold** — scores stream into :class:`~repro.core.kernels.scratchpad.
   BatchScratchpads`, which raises the thresholds the next block is
   screened against.

Why the skip is exact
---------------------
A skipped row must be *provably* rejected: the tracker accepts on
``value >= worst``, so a block may be skipped only when
``upper_bound < worst`` (strict) for every query in the chunk.  The bound
is ``max_row(Σ|v|) · max|x| · slack`` computed in float64, with ``slack``
covering both the pairwise-summation error of the accumulate dtype (Higham:
relative error < (n+2)·eps for an n-term reduction, we budget 16·(n+8)·eps)
and the rounding of the bound product itself.  Unfilled scratchpads have
``worst = −inf``, so nothing is skipped before every query's scratchpad is
full; non-finite bounds (±inf/NaN lanes or queries) fail the strict
compare and disable skipping.  On uniform random collections thresholds
rarely clear the bound and the kernel degenerates to a tighter-working-set
gather; on skewed collections (rows sorted by magnitude, power-law norms)
whole tails of every partition are never read.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels.base import (
    KernelBackend,
    KernelOutput,
    KernelRequest,
    auto_query_chunk,
    map_partitions,
    register_kernel,
)
from repro.core.kernels.scratchpad import BatchScratchpads

__all__ = ["StreamingKernel", "screen_blocks"]

#: Target lane count per row block (× query chunk × itemsize ≈ working set).
_BLOCK_LANE_BUDGET = 16_384


def _block_bounds(starts: np.ndarray, n_lanes: int, budget: int) -> np.ndarray:
    """Row indices partitioning a partition into blocks of ~``budget`` lanes.

    Returns ``[r_0=0, r_1, ..., n_rows]``; each block holds at least one
    row (a single row may exceed the budget).
    """
    n_rows = len(starts)
    lane_of_row = np.concatenate([starts, [n_lanes]])
    bounds = [0]
    r = 0
    while r < n_rows:
        stop = int(np.searchsorted(lane_of_row, lane_of_row[r] + budget, side="left"))
        stop = max(r + 1, min(stop, n_rows))
        bounds.append(stop)
        r = stop
    return np.array(bounds, dtype=np.int64)


def screen_blocks(
    plan, accumulate_dtype, live: "np.ndarray | None" = None
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """The provable-skip precompute: ``(seg_ends, blocks, block_peak)``.

    One home for the correctness-critical screen math shared by this
    backend and the multi-segment driver
    (:mod:`repro.core.kernels.segmented`): per-row |value| sums reduced to
    per-block peaks, scaled by the slack covering the accumulate dtype's
    pairwise-summation error and the bound product's own rounding (see the
    module docstring).  ``live`` zeroes tombstoned rows' weights — they
    are never offered, so they must never inhibit a skip.
    """
    acc = np.dtype(accumulate_dtype)
    starts = plan.starts
    n_lanes = len(plan.kept_values)
    row_abs = np.add.reduceat(np.abs(plan.kept_values), starts)
    if live is not None:
        row_abs = np.where(live, row_abs, 0.0)
    seg_ends = np.concatenate([starts[1:], [n_lanes]])
    max_len = int((seg_ends - starts).max(initial=1))
    slack = 1.0 + 16.0 * (max_len + 8) * float(np.finfo(acc).eps)
    blocks = _block_bounds(starts, n_lanes, _BLOCK_LANE_BUDGET)
    block_peak = np.maximum.reduceat(row_abs, blocks[:-1]) * slack
    return seg_ends, blocks, block_peak


class StreamingKernel(KernelBackend):
    """Fused streaming backend (see module docstring).

    Stateless by design: skip counters ride each run's
    :class:`KernelOutput` (the PR-5 ``last_skip_fraction`` singleton
    mirror is gone), so concurrent engines and process workers never
    observe each other's runs.
    """

    name = "streaming"
    fallback = "gather"

    def run_partition(
        self,
        index,
        plan,
        *,
        X,
        accumulate_dtype,
        local_k,
        query_chunk=None,
    ):
        """One partition: ``(results, accepts, skipped, total)``.

        The skip counters ride the per-partition return value so pool
        workers (thread or process) never share mutable state — no lost
        updates at ``n_workers > 1``.
        """
        acc = np.dtype(accumulate_dtype)
        n_queries = X.shape[0]
        if plan.n_rows == 0:
            return (*BatchScratchpads(n_queries, local_k).finish(), 0, 0)
        skipped = 0
        values = plan.kept_values.astype(acc)
        n_lanes = len(values)
        starts = plan.starts
        # Per-row |value| sums (float64) scaled by the provable slack:
        # any computed row score is <= row_abs[r] * max|x| for its query.
        seg_ends, blocks, block_peak = screen_blocks(plan, acc)

        chunk = query_chunk or auto_query_chunk(
            min(n_lanes, _BLOCK_LANE_BUDGET), acc.itemsize, n_queries
        )
        results = [None] * n_queries
        accepts = np.empty(n_queries, dtype=np.int64)
        for q0 in range(0, n_queries, chunk):
            Xc = X[q0 : q0 + chunk].astype(acc)
            xmax = np.abs(Xc).max(axis=1).astype(np.float64)
            pads = BatchScratchpads(Xc.shape[0], local_k)
            for b in range(len(blocks) - 1):
                r0, r1 = int(blocks[b]), int(blocks[b + 1])
                bound = block_peak[b] * xmax
                if np.all(bound < pads.worst_thresholds()):
                    pads.skip_rows(r1 - r0)
                    skipped += (r1 - r0) * Xc.shape[0]
                    continue
                l0 = int(starts[r0])
                l1 = int(seg_ends[r1 - 1])
                products = Xc[:, plan.kept_idx[l0:l1]]
                products *= values[None, l0:l1]
                reduced = np.add.reduceat(products, starts[r0:r1] - l0, axis=1)
                pads.fold(reduced.astype(acc).astype(np.float64), r0)
            chunk_results, chunk_accepts = pads.finish()
            results[q0 : q0 + Xc.shape[0]] = chunk_results
            accepts[q0 : q0 + Xc.shape[0]] = chunk_accepts
        return results, accepts, skipped, plan.n_rows * n_queries

    def run(self, request: KernelRequest) -> KernelOutput:
        params = {
            "accumulate_dtype": np.dtype(request.accumulate_dtype),
            "local_k": request.local_k,
            "query_chunk": request.query_chunk,
        }

        def one(i, plan):
            return self.run_partition(i, plan, X=request.X, **params)

        per_partition = map_partitions(
            one,
            request.plans,
            request.n_workers,
            executor=request.executor,
            process_fn=self.run_partition,
            process_params=params,
            X=request.X,
        )
        results = [p[0] for p in per_partition]
        accepts = (
            np.stack([p[1] for p in per_partition])
            if per_partition
            else np.zeros((0, request.n_queries), dtype=np.int64)
        )
        return KernelOutput(
            results=results,
            accepts=accepts,
            skipped_rows=sum(p[2] for p in per_partition),
            total_rows=sum(p[3] for p in per_partition),
        )


register_kernel(StreamingKernel())
