"""Native compiled kernel: the streaming fold as Numba ``@njit`` loops.

The streaming backend's three fused stages — provable threshold block
skip, contiguous gather+reduce, per-query depth-K scratchpad insertion —
rewritten as flat loops over the BS-CSR :class:`StreamPlan` buffers with
no ``(Q, n_rows)`` (or even ``(Q, block)``) materialisation, compiled
with ``numba.njit(cache=True, nogil=True)`` when Numba is importable.

Numba is an *optional* dependency (``pip install .[native]``).  The loop
bodies are plain Numba-compatible Python, decorated only when the import
succeeds, so the identical code can run interpreted: setting
``REPRO_NATIVE_INTERPRET=1`` makes the backend report itself available
without Numba (the test suites use this to lock the loop semantics on
small inputs).  With neither Numba nor the override, :meth:`supports`
says no and :func:`~repro.core.kernels.base.run_kernel` silently
substitutes the declared ``streaming`` fallback — importing this module
never requires Numba.

Why the bits still match
------------------------
``run_fast`` (and the gather/streaming kernels) reduce each row's lanes
with ``np.add.reduceat``, whose per-segment accumulation is *pairwise*:
``segment = a[lo] + pairwise(a[lo+1:hi])`` where ``pairwise`` sums runs
of <8 sequentially, unrolls runs up to 128 over eight accumulators
combined as ``((r0+r1)+(r2+r3)) + ((r4+r5)+(r6+r7))``, and splits larger
runs recursively at ``n//2`` rounded down to a multiple of 8.
:func:`_segment_sum` reproduces that tree *exactly* — including the
bit-preservation of single-lane segments (no ``+0.0``, which would turn
``-0.0`` into ``+0.0``) — so per-row scores carry the very same float
bits in both accumulation dtypes (locked by a differential unit test
against ``np.add.reduceat`` and by the kernel property suite).

Scores then stream through a literal transcription of
:meth:`~repro.core.topk_tracker.TopKTracker.insert` (first-argmin slot,
accept on ``value >= worst``), so scratchpad contents, accept counts and
result ordering match the reference by construction; the block screen
reuses :func:`~repro.core.kernels.streaming.screen_blocks` — the same
slack, per query an even *stricter* refinement of the chunk-consensus
skip (each skipped ``(row, query)`` pair is individually provably
rejected), hence bit-neutral.

Under the contraction exactness gate (fixed-point value grid x Q1.31
queries x the 2^52 float64 budget) every partial sum is exact and order
is irrelevant, so the kernel switches to a cheaper sequential-sum fused
path — the contraction backend's arithmetic without the SpMM
materialisation, still inside the same skip/insert loop.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.kernels.base import (
    KernelBackend,
    KernelOutput,
    KernelRequest,
    get_kernel,
    map_partitions,
    register_kernel,
)
from repro.core.kernels.scratchpad import BatchScratchpads
from repro.core.kernels.streaming import screen_blocks
from repro.core.reference import TopKResult

__all__ = [
    "HAVE_NUMBA",
    "INTERPRET_ENV_VAR",
    "NativeKernel",
    "native_available",
    "reduceat_segment_sums",
    "sweep_plan_into_pads",
]

#: Setting this to ``1`` makes the backend available without Numba, running
#: the identical loop bodies interpreted (a test knob, not a fast path).
INTERPRET_ENV_VAR = "REPRO_NATIVE_INTERPRET"

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    HAVE_NUMBA = True
except ImportError:
    _njit = None
    HAVE_NUMBA = False


def native_available() -> bool:
    """Whether the native loops can run (compiled, or forced interpreted)."""
    return HAVE_NUMBA or os.environ.get(INTERPRET_ENV_VAR, "") == "1"


def _maybe_jit(fn):
    if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
        return _njit(cache=True, nogil=True)(fn)
    return fn


#: NumPy's pairwise-summation unrolled-block size.
_PW_BLOCK = 128

#: Scratch-stack depth for the iterative pairwise split: each split level
#: nets two stack entries, so 160 covers runs far beyond any addressable
#: array (2 * 64 levels + transient slack).
_STACK_DEPTH = 160


def _pairwise_base(a, off, n, zero):
    """Pairwise sum of ``a[off:off+n]`` for ``n <= 128`` (NumPy's base case)."""
    if n < 8:
        res = zero
        for i in range(n):
            res = res + a[off + i]
        return res
    r0 = a[off]
    r1 = a[off + 1]
    r2 = a[off + 2]
    r3 = a[off + 3]
    r4 = a[off + 4]
    r5 = a[off + 5]
    r6 = a[off + 6]
    r7 = a[off + 7]
    i = 8
    lim = n - (n % 8)
    while i < lim:
        r0 = r0 + a[off + i]
        r1 = r1 + a[off + i + 1]
        r2 = r2 + a[off + i + 2]
        r3 = r3 + a[off + i + 3]
        r4 = r4 + a[off + i + 4]
        r5 = r5 + a[off + i + 5]
        r6 = r6 + a[off + i + 6]
        r7 = r7 + a[off + i + 7]
        i += 8
    res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
    while i < n:
        res = res + a[off + i]
        i += 1
    return res


def _pairwise_big(a, off, n, zero, vstack, toff, tlen):
    """Pairwise sum for ``n > 128``: the recursive split, run on an explicit
    post-order stack (``tlen == -1`` marks a combine of the top two partial
    sums) so the compiled code needs no recursion support."""
    nt = 0
    nv = 0
    toff[0] = off
    tlen[0] = n
    nt = 1
    while nt > 0:
        nt -= 1
        o = toff[nt]
        ln = tlen[nt]
        if ln == -1:
            right = vstack[nv - 1]
            left = vstack[nv - 2]
            nv -= 2
            vstack[nv] = left + right
            nv += 1
        elif ln <= _PW_BLOCK:
            vstack[nv] = _pairwise_base(a, o, ln, zero)
            nv += 1
        else:
            n2 = ln // 2
            n2 -= n2 % 8
            toff[nt] = 0
            tlen[nt] = -1
            nt += 1
            toff[nt] = o + n2
            tlen[nt] = ln - n2
            nt += 1
            toff[nt] = o
            tlen[nt] = n2
            nt += 1
    return vstack[0]


def _segment_sum(a, lo, hi, zero, vstack, toff, tlen):
    """One ``np.add.reduceat`` segment: ``a[lo] + pairwise(a[lo+1:hi])``.

    A single-lane segment returns ``a[lo]`` bit-preserved (adding 0.0
    would flip ``-0.0`` to ``+0.0``).
    """
    n = hi - lo
    if n == 1:
        return a[lo]
    if n - 1 <= _PW_BLOCK:
        return a[lo] + _pairwise_base(a, lo + 1, n - 1, zero)
    return a[lo] + _pairwise_big(a, lo + 1, n - 1, zero, vstack, toff, tlen)


def _sweep(
    X,
    kept_idx,
    values,
    starts,
    seg_ends,
    blocks,
    block_peak,
    xmax,
    live,
    row_ids,
    exact,
    prod,
    vstack,
    toff,
    tlen,
    vals,
    rows,
    accepts,
    zero,
):
    """The whole fused sweep for one partition plan.

    Walks queries x blocks x rows: screens each block against the query's
    *current* eviction threshold, gathers and reduces surviving live rows
    lane by lane (pairwise tree, or a plain sequential sum when ``exact``
    certifies order-independence), and inserts accepted scores with the
    tracker's first-argmin replace rule.  ``vals``/``rows``/``accepts``
    are updated in place (they may arrive warm from earlier segments);
    returns the number of live (row, query) pairs provably skipped.
    """
    n_queries = X.shape[0]
    k = vals.shape[1]
    n_blocks = len(blocks) - 1
    skipped = 0
    for q in range(n_queries):
        worst = vals[q, 0]
        for j in range(1, k):
            if vals[q, j] < worst:
                worst = vals[q, j]
        xq = xmax[q]
        for b in range(n_blocks):
            r0 = blocks[b]
            r1 = blocks[b + 1]
            if block_peak[b] * xq < worst:
                for r in range(r0, r1):
                    if live[r] != 0:
                        skipped += 1
                continue
            for r in range(r0, r1):
                if live[r] == 0:
                    continue
                l0 = starts[r]
                l1 = seg_ends[r]
                if exact:
                    s = 0.0
                    for l in range(l0, l1):
                        s = s + values[l] * X[q, kept_idx[l]]
                    score = s
                else:
                    m = l1 - l0
                    for j in range(m):
                        l = l0 + j
                        prod[j] = values[l] * X[q, kept_idx[l]]
                    score = float(_segment_sum(prod, 0, m, zero, vstack, toff, tlen))
                if score >= worst:
                    # First slot holding the current minimum (the
                    # priority-encoder argmin): a plain rescan — k is tiny.
                    slot = 0
                    mv = vals[q, 0]
                    for j in range(1, k):
                        if vals[q, j] < mv:
                            mv = vals[q, j]
                            slot = j
                    vals[q, slot] = score
                    rows[q, slot] = row_ids[r]
                    accepts[q] += 1
                    worst = vals[q, 0]
                    for j in range(1, k):
                        if vals[q, j] < worst:
                            worst = vals[q, j]
    return skipped


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    _pairwise_base = _maybe_jit(_pairwise_base)
    _pairwise_big = _maybe_jit(_pairwise_big)
    _segment_sum = _maybe_jit(_segment_sum)
    _sweep = _maybe_jit(_sweep)


def reduceat_segment_sums(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """``np.add.reduceat(values, starts)`` via the native segment model.

    A testable seam: the differential unit suite drives this against the
    real ``np.add.reduceat`` across dtypes, lengths and special values to
    lock the pairwise tree the sweep relies on.
    """
    values = np.ascontiguousarray(values)
    starts = np.asarray(starts, dtype=np.int64)
    n = len(values)
    ends = np.concatenate([starts[1:], [n]])
    zero = values.dtype.type(0.0)
    vstack = np.empty(_STACK_DEPTH, dtype=values.dtype)
    toff = np.empty(_STACK_DEPTH, dtype=np.int64)
    tlen = np.empty(_STACK_DEPTH, dtype=np.int64)
    out = np.empty(len(starts), dtype=values.dtype)
    for i, (lo, hi) in enumerate(zip(starts.tolist(), ends.tolist())):
        out[i] = _segment_sum(values, lo, hi, zero, vstack, toff, tlen)
    return out


def _sweep_plan(
    X: np.ndarray,
    plan,
    accumulate_dtype,
    exact: bool,
    live: "np.ndarray | None",
    row_ids: np.ndarray,
    vals: np.ndarray,
    rows: np.ndarray,
    accepts: np.ndarray,
) -> int:
    """Prepare buffers and run :func:`_sweep` over one plan (in place)."""
    acc = np.dtype(accumulate_dtype)
    values = plan.kept_values.astype(acc)
    kept_idx = np.ascontiguousarray(plan.kept_idx, dtype=np.int64)
    starts = np.ascontiguousarray(plan.starts, dtype=np.int64)
    seg_ends, blocks, block_peak = screen_blocks(plan, acc, live)
    Xc = np.ascontiguousarray(X.astype(acc))
    xmax = np.abs(Xc).max(axis=1).astype(np.float64) if Xc.size else np.zeros(
        Xc.shape[0], dtype=np.float64
    )
    live8 = (
        np.ones(plan.n_rows, dtype=np.uint8)
        if live is None
        else np.ascontiguousarray(live, dtype=np.uint8)
    )
    max_seg = int((seg_ends - starts).max(initial=1))
    prod = np.empty(max_seg, dtype=acc)
    vstack = np.empty(_STACK_DEPTH, dtype=acc)
    toff = np.empty(_STACK_DEPTH, dtype=np.int64)
    tlen = np.empty(_STACK_DEPTH, dtype=np.int64)
    return int(
        _sweep(
            Xc,
            kept_idx,
            values,
            np.ascontiguousarray(starts, dtype=np.int64),
            np.ascontiguousarray(seg_ends, dtype=np.int64),
            np.ascontiguousarray(blocks, dtype=np.int64),
            np.ascontiguousarray(block_peak, dtype=np.float64),
            xmax,
            live8,
            np.ascontiguousarray(row_ids, dtype=np.int64),
            bool(exact),
            prod,
            vstack,
            toff,
            tlen,
            vals,
            rows,
            accepts,
            acc.type(0.0),
        )
    )


def sweep_plan_into_pads(
    X: np.ndarray,
    plan,
    pads: BatchScratchpads,
    accumulate_dtype,
    live: "np.ndarray | None",
    first_live: int,
) -> "tuple[int, int]":
    """Native fold of one plan into existing (possibly warm) scratchpads.

    The multi-segment driver's entry point: the scratchpad state is
    exported dense, advanced by the sweep with live rows renumbered to
    ``first_live + live-position`` (exactly the live-matrix ids), and
    imported back — the import is sequential-tracker-exact, so the global
    fold's cross-segment threshold carry-over is preserved bit for bit.
    Returns ``(skipped_pairs, n_live)``.
    """
    n_rows = plan.n_rows
    if n_rows == 0:
        return 0, 0
    if live is None:
        n_live = n_rows
        row_ids = np.arange(first_live, first_live + n_rows, dtype=np.int64)
    else:
        live8 = np.ascontiguousarray(live, dtype=np.uint8)
        n_live = int(live8.sum())
        if n_live == 0:
            return 0, 0
        row_ids = first_live + np.concatenate(
            [[0], np.cumsum(live8[:-1], dtype=np.int64)]
        ).astype(np.int64)
    vals, rows, accepts = pads.export_state()
    skipped = _sweep_plan(
        X, plan, accumulate_dtype, False, live, row_ids, vals, rows, accepts
    )
    pads.import_state(vals, rows, accepts, seen_rows=n_live)
    return skipped, n_live


def _finish(vals: np.ndarray, rows: np.ndarray):
    """Scratchpad snapshot -> per-query results, exactly as
    :meth:`BatchScratchpads.finish` orders them (desc value, asc row,
    unfilled ``row < 0`` slots dropped)."""
    order = np.lexsort((rows, -vals), axis=-1)
    vals = np.take_along_axis(vals, order, axis=1)
    rows = np.take_along_axis(rows, order, axis=1)
    results = []
    for q in range(vals.shape[0]):
        kept = rows[q] >= 0
        results.append(TopKResult(indices=rows[q][kept], values=vals[q][kept]))
    return results


class NativeKernel(KernelBackend):
    """Compiled streaming-fold backend (see module docstring)."""

    name = "native"
    fallback = "streaming"

    @staticmethod
    def available() -> bool:
        return native_available()

    def supports(self, request: KernelRequest) -> bool:
        return self.available()

    def run_partition(
        self,
        index,
        plan,
        *,
        X,
        accumulate_dtype,
        local_k,
        exact=False,
        query_chunk=None,
    ):
        """One partition: ``(results, accepts, skipped, total)``.

        ``query_chunk`` is accepted for interface parity but unused — the
        sweep holds no per-chunk intermediate, so there is nothing to
        size (and chunking is bit-neutral by contract anyway).
        """
        n_queries = X.shape[0]
        if plan.n_rows == 0:
            return (*BatchScratchpads(n_queries, local_k).finish(), 0, 0)
        vals = np.full((n_queries, local_k), -np.inf, dtype=np.float64)
        rows = np.full((n_queries, local_k), -1, dtype=np.int64)
        accepts = np.zeros(n_queries, dtype=np.int64)
        row_ids = np.arange(plan.n_rows, dtype=np.int64)
        skipped = _sweep_plan(
            X, plan, accumulate_dtype, exact, None, row_ids, vals, rows, accepts
        )
        return _finish(vals, rows), accepts, skipped, plan.n_rows * n_queries

    def run(self, request: KernelRequest) -> KernelOutput:
        acc = np.dtype(request.accumulate_dtype)
        # The contraction gate certifies order-independent exact float64
        # accumulation — then the cheaper sequential-sum path is the same
        # bits as the pairwise tree (no partial sum ever rounds).
        exact = bool(get_kernel("contraction").supports(request))
        params = {
            "accumulate_dtype": acc,
            "local_k": request.local_k,
            "exact": exact,
        }

        def one(i, plan):
            return self.run_partition(i, plan, X=request.X, **params)

        per_partition = map_partitions(
            one,
            request.plans,
            request.n_workers,
            executor=request.executor,
            process_fn=self.run_partition,
            process_params=params,
            X=request.X,
        )
        results = [p[0] for p in per_partition]
        accepts = (
            np.stack([p[1] for p in per_partition])
            if per_partition
            else np.zeros((0, request.n_queries), dtype=np.int64)
        )
        return KernelOutput(
            results=results,
            accepts=accepts,
            skipped_rows=sum(p[2] for p in per_partition),
            total_rows=sum(p[3] for p in per_partition),
        )


register_kernel(NativeKernel())
