"""Vectorised per-query Top-K scratchpads, foldable block by block.

:class:`BatchScratchpads` carries every query's k-entry replace-the-minimum
scratchpad (the hardware unit of
:class:`~repro.core.topk_tracker.TopKTracker`) across an *incremental* row
stream: backends feed ``(Q, n_block)`` score blocks in row order and the
final state is bit-identical — slot contents, accept counts, result
ordering — to offering every row sequentially to a per-query tracker.

Why incremental folding is exact
--------------------------------
Two invariants of the tracker make any block/window partitioning safe:

* while a scratchpad holds fewer than ``k`` entries, every offered
  *finite* row is accepted into the next free slot (the argmin always
  lands on the first −inf register), so the fill is a straight copy as
  long as every value is finite — NaN fails every ``>=`` compare and is
  never accepted, and an accepted −inf leaves the argmin parked on its
  own slot, so the next row overwrites it instead of taking a free slot;
* once full, the eviction threshold (current worst) never decreases, so a
  row below the threshold *at any earlier time* is rejected no matter when
  it arrives — pre-filtering a window against the threshold at the
  window's start can only drop rows the tracker would reject anyway, and
  the surviving rows are re-checked sequentially in arrival order.

Blocks containing any non-finite value (NaN or ±inf) take a per-row
sequential path that mirrors :meth:`TopKTracker.insert` operation for
operation, so the guarantee holds unconditionally.
"""

from __future__ import annotations

import numpy as np

from repro.core.reference import TopKResult

__all__ = ["BatchScratchpads", "batch_scratchpads"]


class BatchScratchpads:
    """Running Top-K scratchpads for ``n_queries`` queries (see module doc).

    The hot state lives in Python lists: ``min()``/``list.index()`` on k≈8
    entries beat numpy call overhead by an order of magnitude in the
    survivor loop.
    """

    def __init__(self, n_queries: int, local_k: int):
        self.n_queries = int(n_queries)
        self.local_k = int(local_k)
        self._vals = [[-np.inf] * local_k for _ in range(n_queries)]
        self._rows = [[-1] * local_k for _ in range(n_queries)]
        self._worsts = [-np.inf] * n_queries
        self._accepts = [0] * n_queries
        #: Rows offered (or provably-rejected-and-skipped) so far; controls
        #: the doubling window growth only — never any result bit.
        self._seen = 0
        #: False once a non-finite block forced the sequential path; the
        #: fill shortcut then stays off (per-query fill levels and slot
        #: layouts may diverge).
        self._uniform = True

    # ------------------------------------------------------------------ #
    # State backends read
    # ------------------------------------------------------------------ #
    def worst_thresholds(self) -> np.ndarray:
        """Per-query eviction thresholds (−inf while a scratchpad is unfilled)."""
        return np.array(self._worsts)

    def export_state(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Dense ``(vals, rows, accepts)`` snapshot of every scratchpad.

        For kernels that advance the tracker state outside :meth:`fold`
        (the native sweep): ``vals`` is ``(Q, k)`` float64, ``rows``
        ``(Q, k)`` int64 (−1 = unfilled), ``accepts`` ``(Q,)`` int64 —
        freshly allocated, safe to mutate and hand back to
        :meth:`import_state`.
        """
        vals = np.array(self._vals, dtype=np.float64).reshape(
            self.n_queries, self.local_k
        )
        rows = np.array(self._rows, dtype=np.int64).reshape(
            self.n_queries, self.local_k
        )
        return vals, rows, np.array(self._accepts, dtype=np.int64)

    def import_state(
        self,
        vals: np.ndarray,
        rows: np.ndarray,
        accepts: np.ndarray,
        seen_rows: int = 0,
    ) -> None:
        """Adopt a state advanced outside :meth:`fold`.

        The caller guarantees the state is what sequential
        :meth:`TopKTracker.insert` operations starting from
        :meth:`export_state` would have produced — then every invariant
        (thresholds never decrease, NaN-free slots) still holds.  The
        fill shortcut is disabled afterwards (per-query fill levels may
        now differ); the windowed fold path remains exact regardless.
        ``seen_rows`` advances the window-growth counter by the rows
        offered or provably skipped — never any result bit.
        """
        self._vals = vals.tolist()
        self._rows = rows.tolist()
        self._accepts = [int(a) for a in accepts.tolist()]
        self._worsts = [min(v) for v in self._vals]
        self._seen += int(seen_rows)
        self._uniform = False

    # ------------------------------------------------------------------ #
    # Folding
    # ------------------------------------------------------------------ #
    def skip_rows(self, n_rows: int) -> None:
        """Account rows a backend proved every query would reject.

        Only advances the window-growth counter; a skipped row must satisfy
        ``value < worst`` for every query (strict), which the tracker
        rejects without counting an accept — so skipping is bit-neutral.
        """
        self._seen += int(n_rows)

    def fold(self, row_values: np.ndarray, first_row: int) -> None:
        """Offer rows ``first_row + j`` with values ``row_values[:, j]``.

        ``row_values`` must be float64 with one row per query, columns in
        row order.  Upcasting float32 scores to float64 is exact, so the
        float bits compared downstream are unchanged.
        """
        n_queries, n_block = row_values.shape
        if n_queries != self.n_queries:
            raise ValueError(
                f"fold got {n_queries} queries, scratchpads hold {self.n_queries}"
            )
        if n_block == 0:
            return
        if not np.isfinite(row_values).all():
            self._fold_sequential(row_values, first_row)
            return

        local_k = self.local_k
        start = 0
        if self._uniform and self._seen < local_k:
            # Fill: finite rows land in slots seen..k-1 unconditionally
            # (every finite value passes ``>= -inf`` and raises its slot
            # above −inf, keeping the argmin on the next free register),
            # identically for every query, so the fill is one sliced copy.
            fill = min(local_k - self._seen, n_block)
            head = row_values[:, :fill].tolist()
            slot = self._seen
            for q in range(n_queries):
                self._vals[q][slot : slot + fill] = head[q]
                self._rows[q][slot : slot + fill] = range(
                    first_row, first_row + fill
                )
                self._accepts[q] += fill
            self._seen += fill
            for q in range(n_queries):
                self._worsts[q] = min(self._vals[q])
            start = fill

        # Windowed survivor filtering: each window is pre-screened against
        # every query's threshold at the window start (rows below it are
        # rejected no matter when they arrive), and the survivors replay
        # the sequential argmin scratchpad in (query, row) order.  Window
        # sizes double with the rows seen so early, low-threshold windows
        # stay short.
        vals, rows = self._vals, self._rows
        worsts, accepts = self._worsts, self._accepts
        lo = start
        while lo < n_block:
            hi = min(n_block, lo + max(local_k, self._seen))
            window = row_values[:, lo:hi]
            thresholds = np.array(worsts)
            survives = window >= thresholds[:, None]
            qq, jj = np.nonzero(survives)
            base = first_row + lo
            for q, j, value in zip(qq.tolist(), jj.tolist(), window[survives].tolist()):
                worst = worsts[q]
                if value >= worst:
                    tracker = vals[q]
                    slot = tracker.index(worst)
                    tracker[slot] = value
                    rows[q][slot] = base + j
                    accepts[q] += 1
                    worsts[q] = min(tracker)
            self._seen += hi - lo
            lo = hi

    def _fold_sequential(self, row_values: np.ndarray, first_row: int) -> None:
        """Non-finite block: mirror ``TopKTracker.insert`` row by row.

        ``list.index(min(...))`` picks the first minimal slot exactly as
        the tracker's priority-encoder argmin does — including an accepted
        −inf, which lands on (and keeps re-targeting) the first −inf slot
        rather than the next free one; NaN fails ``>=`` and is never
        accepted, so scratchpad values (and hence ``min``) stay NaN-free.
        """
        self._uniform = False
        values = row_values.tolist()
        for q in range(self.n_queries):
            tracker = self._vals[q]
            tracker_rows = self._rows[q]
            worst = self._worsts[q]
            for j, value in enumerate(values[q]):
                if value >= worst:
                    slot = tracker.index(worst)
                    tracker[slot] = value
                    tracker_rows[slot] = first_row + j
                    self._accepts[q] += 1
                    worst = min(tracker)
            self._worsts[q] = worst
        self._seen += row_values.shape[1]

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def finish(self) -> "tuple[list[TopKResult], np.ndarray]":
        """Snapshot per-query results (desc value, asc row) + accept counts."""
        vals = np.array(self._vals, dtype=np.float64).reshape(
            self.n_queries, self.local_k
        )
        rows = np.array(self._rows, dtype=np.int64).reshape(
            self.n_queries, self.local_k
        )
        order = np.lexsort((rows, -vals), axis=-1)
        vals = np.take_along_axis(vals, order, axis=1)
        rows = np.take_along_axis(rows, order, axis=1)
        results = []
        for q in range(self.n_queries):
            kept = rows[q] >= 0
            results.append(TopKResult(indices=rows[q][kept], values=vals[q][kept]))
        return results, np.array(self._accepts, dtype=np.int64)


def batch_scratchpads(
    row_values: np.ndarray, local_k: int
) -> "tuple[list[TopKResult], np.ndarray]":
    """Every query's scratchpad over one full ``(Q, n_rows)`` score block.

    One fold of the whole block — bit-identical to sequential per-query
    :class:`~repro.core.topk_tracker.TopKTracker` inserts in row order.
    """
    pads = BatchScratchpads(row_values.shape[0], local_k)
    pads.fold(np.asarray(row_values, dtype=np.float64), 0)
    return pads.finish()
