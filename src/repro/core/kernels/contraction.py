"""CSR-contraction kernel: one sparse·dense product for the whole sweep.

Every :class:`~repro.core.dataflow.StreamPlan` is *lowered* once into a
collection-level CSR operand — the kept-lane values and column indices
concatenated across partitions, with row pointers from the per-row segment
starts — and a batch's scores become a single SciPy ``csr_matrix @ dense``
product instead of 32 per-partition gather/reduceat sweeps.  The operand is
built once per compiled collection (``compile_collection`` lowers it; the
artifact persists it), so the per-batch cost is just the SpMM plus the
scratchpad folds.

When is a sparse product bit-identical to the hardware model?
-------------------------------------------------------------
SciPy accumulates each row sequentially; ``np.add.reduceat`` (the reference
and ``run_fast``) reduces pairwise.  The two agree on every bit exactly
when the accumulation is *exact*, i.e. no partial sum ever rounds — then
any summation order yields the one true value.  That holds provably when

* values sit on a fixed-point grid ``2^-f_v`` (the paper's fixed/signed
  codecs; ``value_grid_bits`` records ``f_v``),
* the query block sits on the ``2^-31`` grid (the Q1.31/sQ1.30 URAM
  formats; checked against the actual ``X`` at request time), and
* every partial sum fits the float64 mantissa:
  ``max_row(Σ|v|·2^f_v) · max|x·2^31| < 2^52`` (products are then exact —
  value and query significands multiply within 53 bits — and every
  in-order or pairwise partial sum is an exactly-representable multiple of
  ``2^-(f_v+31)``; the 2^52 budget leaves a 2× guard band over the
  mantissa so the float64-computed gate itself cannot flip the decision).

The paper's best design (20-bit fixed point, f_v = 19) passes this gate on
its evaluation workloads; 25/32-bit fixed designs and the float32 design
overflow the budget (or accumulate in float32), so
:meth:`ContractionKernel.supports` says no and the driver falls back to the
reference kernel automatically — the bit-exactness guarantee is never
traded for speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.kernels.base import (
    KernelBackend,
    KernelOutput,
    KernelRequest,
    register_kernel,
)
from repro.core.kernels.scratchpad import BatchScratchpads
from repro.errors import ConfigurationError

__all__ = [
    "ContractionOperand",
    "codec_grid_bits",
    "codecs_grid_bits",
    "lower_plans",
    "ContractionKernel",
]

#: Queries must sit on this grid (Q1.31; the signed sQ1.30 grid is a subset).
QUERY_GRID_BITS = 31

#: Raw-significand budget for provably exact accumulation (2^52, not 2^53:
#: a 2x guard band so the float64 gate arithmetic is itself conclusive).
_EXACT_RAW_BUDGET = float(2**52)


@dataclass
class ContractionOperand:
    """A collection-level CSR lowering of one plan list (see module doc).

    ``data``/``indices``/``indptr`` describe all partitions' rows stacked in
    partition order (placeholder lanes included — they contribute an exact
    zero); ``part_rows[i]`` is partition ``i``'s row count, so partition
    ``i`` owns operand rows ``[part_offsets[i], part_offsets[i+1])``.
    """

    data: np.ndarray
    indices: np.ndarray
    indptr: np.ndarray
    part_rows: np.ndarray
    #: Fraction bits ``f_v`` of the value grid; ``None`` when the codec
    #: gives no fixed grid (float32/exact codecs) — the gate then never
    #: passes and the kernel always falls back.
    value_grid_bits: "int | None" = None
    #: ``max_row(Σ|v|·2^f_v)`` (0.0 when ``value_grid_bits`` is None).
    max_abs_row_raw: float = 0.0
    _matrices: dict = field(default_factory=dict, repr=False)

    @property
    def n_rows(self) -> int:
        return len(self.indptr) - 1

    @property
    def part_offsets(self) -> np.ndarray:
        """Row boundaries per partition, ``[0, ..., n_rows]``."""
        return np.concatenate([[0], np.cumsum(self.part_rows)]).astype(np.int64)

    def matrix(self, n_cols: int):
        """The SciPy CSR operand at a given width (built once per width)."""
        if n_cols not in self._matrices:
            import scipy.sparse as sp

            self._matrices[n_cols] = sp.csr_matrix(
                (self.data, self.indices, self.indptr),
                shape=(self.n_rows, n_cols),
            )
        return self._matrices[n_cols]

    def partition_slice(self, start: int, stop: int) -> "ContractionOperand":
        """Partitions ``[start, stop)`` as an operand sharing these buffers.

        ``max_abs_row_raw`` is inherited (an upper bound over any subset),
        so the slice's gate is conservative, never wrong.
        """
        offsets = self.part_offsets
        r0, r1 = int(offsets[start]), int(offsets[stop])
        l0, l1 = int(self.indptr[r0]), int(self.indptr[r1])
        return ContractionOperand(
            data=self.data[l0:l1],
            indices=self.indices[l0:l1],
            indptr=self.indptr[r0 : r1 + 1] - l0,
            part_rows=self.part_rows[start:stop],
            value_grid_bits=self.value_grid_bits,
            max_abs_row_raw=self.max_abs_row_raw,
        )


def codec_grid_bits(codec) -> "int | None":
    """Fraction bits of a codec's value grid, if it provably has one.

    ``None`` means the exactness gate can never pass for values encoded by
    this codec (float32/exact codecs): callers can use that to skip the
    O(nnz) operand lowering entirely instead of building an operand whose
    ``value_grid_bits`` would be ``None``.
    """
    fmt = getattr(codec, "fmt", None)
    if fmt is not None and hasattr(fmt, "fraction_bits"):
        return int(fmt.fraction_bits)
    return None


def codecs_grid_bits(codecs) -> "int | None":
    """The one value grid shared by every codec in a set, if any.

    ``None`` — empty set, mixed grids, or any grid-less codec — means the
    exactness gate can never pass for values they encode: the single
    eligibility rule behind both lowering an operand and skipping the
    lowering entirely.
    """
    bits = {codec_grid_bits(c) for c in codecs}
    if len(bits) == 1 and None not in bits:
        return bits.pop()
    return None


def lower_plans(plans, codecs=None) -> ContractionOperand:
    """Lower stream plans (+ their value codecs) to one CSR operand.

    ``codecs`` — one per plan, or ``None`` — determines the value grid: the
    grid is recorded only when *every* partition's codec puts values on the
    same fixed-point grid, otherwise the operand is usable but ungated
    (the contraction kernel will always fall back).
    """
    plans = list(plans)
    if codecs is not None and len(codecs) != len(plans):
        raise ConfigurationError(
            f"{len(codecs)} codecs supplied for {len(plans)} plans"
        )
    datas, idxs, lens, part_rows = [], [], [], []
    for plan in plans:
        datas.append(plan.kept_values)
        idxs.append(plan.kept_idx)
        n_lanes = len(plan.kept_values)
        lens.append(np.diff(np.concatenate([plan.starts, [n_lanes]])))
        part_rows.append(plan.n_rows)
    if plans:
        data = np.ascontiguousarray(np.concatenate(datas), dtype=np.float64)
        indices = np.ascontiguousarray(np.concatenate(idxs), dtype=np.int64)
        seg_lens = np.concatenate(lens)
    else:
        data = np.empty(0, dtype=np.float64)
        indices = np.empty(0, dtype=np.int64)
        seg_lens = np.empty(0, dtype=np.int64)
    indptr = np.concatenate([[0], np.cumsum(seg_lens)]).astype(np.int64)

    grid_bits: "int | None" = None
    max_abs_row_raw = 0.0
    if codecs is not None and plans:
        grid_bits = codecs_grid_bits(codecs)
        if grid_bits is not None and len(data):
            row_abs = np.add.reduceat(np.abs(data), indptr[:-1])
            # Rows of width 0 cannot occur (empty rows carry a
            # placeholder lane), so reduceat segments are well-formed.
            max_abs_row_raw = float(row_abs.max(initial=0.0)) * float(
                2**grid_bits
            )
    return ContractionOperand(
        data=data,
        indices=indices,
        indptr=indptr,
        part_rows=np.asarray(part_rows, dtype=np.int64),
        value_grid_bits=grid_bits,
        max_abs_row_raw=max_abs_row_raw,
    )


class ContractionKernel(KernelBackend):
    """Sparse-contraction backend, gated on provable exactness."""

    name = "contraction"
    fallback = "gather"

    def supports(self, request: KernelRequest) -> bool:
        operand = request.operand
        if not isinstance(operand, ContractionOperand):
            return False
        if operand.value_grid_bits is None:
            return False
        if np.dtype(request.accumulate_dtype) != np.dtype(np.float64):
            return False
        if len(operand.part_rows) != len(request.plans) or any(
            int(rows) != plan.n_rows
            for rows, plan in zip(operand.part_rows, request.plans)
        ):
            return False
        scaled = request.X * float(2**QUERY_GRID_BITS)
        if not np.isfinite(scaled).all() or (scaled != np.rint(scaled)).any():
            return False
        max_raw_x = float(np.abs(scaled).max(initial=0.0))
        return operand.max_abs_row_raw * max_raw_x < _EXACT_RAW_BUDGET

    def run(self, request: KernelRequest) -> KernelOutput:
        operand: ContractionOperand = request.operand
        n_queries = request.n_queries
        n_parts = len(request.plans)
        matrix = operand.matrix(request.X.shape[1])
        offsets = operand.part_offsets
        results: "list[list]" = [[None] * n_queries for _ in range(n_parts)]
        accepts = np.zeros((n_parts, n_queries), dtype=np.int64)
        chunk = request.query_chunk or min(max(1, n_queries), 512)
        for q0 in range(0, n_queries, chunk):
            Xc = request.X[q0 : q0 + chunk]
            scores = matrix @ Xc.T  # (n_rows_total, chunk), provably exact
            for p in range(n_parts):
                r0, r1 = int(offsets[p]), int(offsets[p + 1])
                pads = BatchScratchpads(Xc.shape[0], request.local_k)
                pads.fold(np.ascontiguousarray(scores[r0:r1].T), 0)
                part_results, part_accepts = pads.finish()
                results[p][q0 : q0 + Xc.shape[0]] = part_results
                accepts[p, q0 : q0 + Xc.shape[0]] = part_accepts
        return KernelOutput(results=results, accepts=accepts)


register_kernel(ContractionKernel())
