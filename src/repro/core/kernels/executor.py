"""Partition executors: inline, thread-pool and shared-memory processes.

:func:`map_partitions` is the one fan-out point every partition-parallel
kernel backend goes through.  Three executors serve it:

``inline``
    ``n_workers <= 1`` (or a single partition): a plain loop.
``thread``
    The default.  A :class:`~concurrent.futures.ThreadPoolExecutor`; NumPy
    releases the GIL inside the big gathers/reductions, and the native
    kernels compile with ``nogil=True``, so threads scale for the compiled
    and vectorised portions.
``process``
    ``REPRO_KERNEL_EXECUTOR=process`` (or ``executor="process"``): a
    persistent *spawn* :class:`~concurrent.futures.ProcessPoolExecutor`.
    The query block and every partition plan are exported once per sweep
    into a single :class:`multiprocessing.shared_memory.SharedMemory`
    arena; workers attach **zero-copy** (NumPy views over the mapped
    buffer) instead of unpickling array payloads, so the per-task pickle
    cost is one small descriptor and the returned Top-K candidates.

Executor choice is bit-neutral by construction: results come back in
partition order, each partition's computation is pure, and the process
path runs the very same ``run_partition`` code the thread path runs.
Backends opt into the process path by handing ``map_partitions`` a
*picklable* per-partition entry point (a bound ``run_partition`` method);
without one the call degrades to the thread pool rather than failing.

``resolve_workers`` also lives here: it accepts an explicit count, the
``REPRO_KERNEL_WORKERS`` environment variable, and — new — ``"auto"`` or
``0``, both meaning ``os.cpu_count()``.
"""

from __future__ import annotations

import atexit
import os
import warnings
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "EXECUTOR_ENV_VAR",
    "WORKERS_ENV_VAR",
    "DEFAULT_EXECUTOR",
    "EXECUTORS",
    "resolve_workers",
    "resolve_executor",
    "map_partitions",
    "SharedPlanArena",
]

#: Environment variable overriding the partition-worker count.
WORKERS_ENV_VAR = "REPRO_KERNEL_WORKERS"

#: Environment variable selecting the partition executor.
EXECUTOR_ENV_VAR = "REPRO_KERNEL_EXECUTOR"

#: Executor used when none is named (and the env var is unset).
DEFAULT_EXECUTOR = "thread"

#: The selectable executors (inline is implicit at ``n_workers <= 1``).
EXECUTORS = ("thread", "process")


def resolve_workers(n_workers: "int | str | None" = None) -> int:
    """An explicit count, else ``$REPRO_KERNEL_WORKERS``, else 1 (inline).

    ``"auto"`` and ``0`` — from either the argument or the environment —
    mean ``os.cpu_count()``.
    """
    if n_workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "")
        n_workers = raw if raw else 1
    if isinstance(n_workers, str):
        text = n_workers.strip()
        if text.lower() == "auto":
            n_workers = 0
        else:
            try:
                n_workers = int(text)
            except ValueError as exc:
                raise ConfigurationError(
                    f"{WORKERS_ENV_VAR}={n_workers!r} is not an integer"
                ) from exc
    if n_workers == 0:
        n_workers = os.cpu_count() or 1
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    return int(n_workers)


def resolve_executor(executor: "str | None" = None) -> str:
    """An explicit name, else ``$REPRO_KERNEL_EXECUTOR``, else ``thread``."""
    resolved = executor or os.environ.get(EXECUTOR_ENV_VAR) or DEFAULT_EXECUTOR
    if resolved not in EXECUTORS:
        raise ConfigurationError(
            f"unknown executor {resolved!r}; available: {list(EXECUTORS)}"
        )
    return resolved


# --------------------------------------------------------------------- #
# Shared-memory plan arena
# --------------------------------------------------------------------- #
def _attach_shared_memory(name: str):
    """Attach an existing segment without tracking it for cleanup.

    On Python >= 3.13 ``track=False`` skips the resource-tracker
    registration outright.  Before 3.13 the attach re-registers the name —
    harmlessly: spawn workers share the creator's tracker process, whose
    per-type cache is a set, so the duplicate registration is a no-op and
    the creator's unlink-time unregister stays balanced.  (Explicitly
    unregistering here instead would remove the *creator's* entry and make
    that final unregister fail.)
    """
    from multiprocessing.shared_memory import SharedMemory

    try:
        return SharedMemory(name=name, track=False)  # Python >= 3.13
    except TypeError:
        return SharedMemory(name=name)


def _align(offset: int) -> int:
    return (offset + 63) & ~63


class SharedPlanArena:
    """One query block + plan list packed into a single shared segment.

    The layout is recorded in :attr:`descriptor` — a small picklable dict
    of ``(offset, dtype, shape)`` triples keyed by array role — which is
    all that crosses the process boundary per sweep.  Workers rebuild the
    arrays as views over the attached buffer via :meth:`attach_plan`:
    zero bytes of plan or query data are pickled.
    """

    def __init__(self, X: np.ndarray, plans):
        from multiprocessing.shared_memory import SharedMemory

        staged = []  # (offset, contiguous array) pairs to copy in

        def stage(arr: np.ndarray, offset: int) -> "tuple[tuple, int]":
            arr = np.ascontiguousarray(arr)
            offset = _align(offset)
            staged.append((offset, arr))
            meta = (offset, arr.dtype.str, arr.shape)
            return meta, offset + arr.nbytes

        offset = 0
        x_meta, offset = stage(np.asarray(X), offset)
        plan_metas = []
        for plan in plans:
            idx_meta, offset = stage(plan.kept_idx, offset)
            val_meta, offset = stage(plan.kept_values, offset)
            starts_meta, offset = stage(plan.starts, offset)
            plan_metas.append(
                {
                    "n_rows": int(plan.n_rows),
                    "kept_idx": idx_meta,
                    "kept_values": val_meta,
                    "starts": starts_meta,
                }
            )
        self.shm = SharedMemory(create=True, size=max(1, offset))
        for off, arr in staged:
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=self.shm.buf, offset=off)
            view[...] = arr
        self.descriptor = {
            "name": self.shm.name,
            "X": x_meta,
            "plans": plan_metas,
        }
        # Crash-safe reclamation: the segment is unlinked even when the
        # owning sweep dies before reaching close() — at garbage collection
        # or interpreter exit, whichever comes first — so no ``/dev/shm``
        # entry ever outlives the parent.
        self._finalizer = weakref.finalize(self, self._reclaim, self.shm)

    @staticmethod
    def _reclaim(shm) -> None:
        """Finalizer body: close the mapping and unlink the segment."""
        try:
            shm.close()
        except (OSError, ValueError):  # pragma: no cover - already closed
            pass
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - gone
            pass

    @staticmethod
    def _view(shm, meta) -> np.ndarray:
        offset, dtype, shape = meta
        return np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)

    @classmethod
    def attach_plan(cls, descriptor: dict, index: int):
        """Attach and rebuild ``(shm, X, plans[index])`` as zero-copy views.

        The caller must ``shm.close()`` after the views are no longer
        needed (and must not return anything aliasing them).
        """
        from repro.core.dataflow import DataflowStats, StreamPlan

        shm = _attach_shared_memory(descriptor["name"])
        X = cls._view(shm, descriptor["X"])
        meta = descriptor["plans"][index]
        plan = StreamPlan(
            n_rows=meta["n_rows"],
            kept_idx=cls._view(shm, meta["kept_idx"]),
            kept_values=cls._view(shm, meta["kept_values"]),
            starts=cls._view(shm, meta["starts"]),
            stats=DataflowStats(),
        )
        return shm, X, plan

    def close(self, unlink: bool = False) -> None:
        if unlink:
            # Runs the registered finalizer (at most once): close + unlink.
            self._finalizer()
        else:
            self.shm.close()


# --------------------------------------------------------------------- #
# Process pool (persistent, spawn-based)
# --------------------------------------------------------------------- #
_POOL: "ProcessPoolExecutor | None" = None
_POOL_SIZE = 0


def _shutdown_pool() -> None:
    global _POOL, _POOL_SIZE
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
        _POOL_SIZE = 0


def _process_pool(size: int) -> ProcessPoolExecutor:
    """A cached spawn pool with at least ``size`` workers.

    Spawn (not fork) so workers hold no copy-on-write snapshot of the
    parent heap — the arena is the only shared state — and so the pool is
    safe to create from threaded parents.  The pool persists across
    sweeps; the first call pays the interpreter start-up, later sweeps
    only pay the descriptor pickle.
    """
    global _POOL, _POOL_SIZE
    if _POOL is None or _POOL_SIZE < size:
        import multiprocessing

        if _POOL is None:
            atexit.register(_shutdown_pool)
        else:
            _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = ProcessPoolExecutor(
            max_workers=size, mp_context=multiprocessing.get_context("spawn")
        )
        _POOL_SIZE = size
    return _POOL


def _run_partition_from_arena(descriptor, process_fn, params, index):
    """Worker-side entry: attach, rebuild views, run, detach.

    ``process_fn`` must return freshly allocated arrays only (every
    backend's ``run_partition`` does) — the segment is unmapped before the
    return value is pickled back.
    """
    shm, X, plan = SharedPlanArena.attach_plan(descriptor, index)
    try:
        return process_fn(index, plan, X=X, **params)
    finally:
        shm.close()


#: Sentinel returned by :func:`_map_partitions_process` when the pool broke
#: twice in a row — the caller degrades to the thread executor.
_DEGRADE = object()


def _map_partitions_process(process_fn, params, X, plans, n_workers):
    arena = SharedPlanArena(X, plans)
    try:
        # A dead worker (OOM-kill, segfault, os._exit) poisons the whole
        # pool as BrokenProcessPool.  Partition work is pure and the arena
        # outlives the attempt, so the safe response is: respawn the pool
        # once and resubmit everything; if the fresh pool breaks too, hand
        # control back so the caller degrades to threads.
        for attempt in range(2):
            pool = _process_pool(min(n_workers, len(plans)))
            futures = [
                pool.submit(_run_partition_from_arena, arena.descriptor, process_fn, params, i)
                for i in range(len(plans))
            ]
            # Drain *every* future before the arena is unlinked (a
            # straggler must never race an attach against the unlink),
            # then surface the first failure with its original exception.
            results, first_exc, broken = [], None, False
            for future in futures:
                try:
                    results.append(future.result())
                except BrokenProcessPool:
                    broken = True
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    if first_exc is None:
                        first_exc = exc
            if broken:
                _shutdown_pool()
                if attempt == 0:
                    warnings.warn(
                        "a partition worker died; respawning the process "
                        "pool and resubmitting the sweep",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    continue
                return _DEGRADE
            if first_exc is not None:
                raise first_exc
            return results
        return _DEGRADE  # pragma: no cover - loop always returns
    finally:
        arena.close(unlink=True)


def map_partitions(
    fn,
    plans,
    n_workers: int,
    executor: "str | None" = None,
    process_fn=None,
    process_params: "dict | None" = None,
    X: "np.ndarray | None" = None,
) -> list:
    """``[fn(i, plan) for i, plan in enumerate(plans)]``, fanned out.

    With ``n_workers > 1`` partitions run on the resolved executor;
    results come back in partition order regardless of scheduling, so the
    output is identical to the inline loop (each partition's computation
    is independent and pure).  The process executor additionally needs
    ``process_fn`` (a picklable ``(index, plan, *, X, **params)``
    callable) and ``X``; backends that do not provide them fall back to
    the thread pool.  A partition callable that raises surfaces its
    original exception under every executor.
    """
    executor = resolve_executor(executor)
    if n_workers <= 1 or len(plans) <= 1:
        return [fn(i, plan) for i, plan in enumerate(plans)]
    if executor == "process" and process_fn is not None and X is not None:
        results = _map_partitions_process(
            process_fn, dict(process_params or {}), X, plans, n_workers
        )
        if results is not _DEGRADE:
            return results
        warnings.warn(
            "the respawned process pool broke again; degrading this sweep "
            "to the thread executor (results are bit-identical, only "
            "slower)",
            RuntimeWarning,
            stacklevel=2,
        )
    with ThreadPoolExecutor(max_workers=min(n_workers, len(plans))) as pool:
        return list(pool.map(fn, range(len(plans)), plans))
