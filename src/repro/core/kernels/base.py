"""Kernel backend contract and registry for the batch-query hot path.

A *kernel backend* answers one question: given a ``(Q, n_cols)`` quantised
query block and the per-partition :class:`~repro.core.dataflow.StreamPlan`
structures, what are every partition's per-query local Top-K candidates and
tracker-accept counts?  The answer is required to be **bit-identical** —
candidate indices, float bit patterns and accept counts — to
:meth:`repro.core.dataflow.DataflowCore.run_fast` run per query, for both
the float64 (exact fixed-point) and float32 accumulation models.

Backends therefore differ only in *how* they compute the same bits:

``gather``
    The reference: broadcast gather + ``np.add.reduceat`` sweep per
    partition, materialising the full ``(Q, n_rows)`` score block.
``streaming``
    Row-block streaming that folds scores straight into the per-query
    scratchpads and skips whole blocks whose provable score upper bound is
    below every query's eviction threshold — never materialising
    ``(Q, n_rows)``.
``contraction``
    One collection-level sparse·dense product (SciPy CSR), valid only when
    fixed-point value/query grids make float64 accumulation provably exact
    (order-independent); otherwise it falls back automatically.
``native``
    The streaming fold compiled with Numba (optional dependency) — flat
    ``@njit`` loops over the plan buffers reproducing ``np.add.reduceat``'s
    pairwise tree bit for bit; unavailable (and substituted by its
    ``streaming`` fallback) when Numba is absent.
``auto``
    The first backend of the preference order that supports the request.

A backend that cannot guarantee the accumulation order of the current
request must say so via :meth:`KernelBackend.supports`; the driver
(:func:`run_kernel`) then silently substitutes the backend's declared
fallback, so callers always get the guaranteed bits.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.core.kernels.executor import (  # noqa: F401 - re-exported API
    EXECUTOR_ENV_VAR,
    WORKERS_ENV_VAR,
    map_partitions,
    resolve_executor,
    resolve_workers,
)
from repro.errors import ConfigurationError

__all__ = [
    "KernelRequest",
    "KernelOutput",
    "KernelBackend",
    "register_kernel",
    "get_kernel",
    "available_kernels",
    "resolve_kernel_name",
    "resolve_workers",
    "resolve_executor",
    "auto_query_chunk",
    "map_partitions",
    "run_kernel",
    "DEFAULT_KERNEL",
    "FALLBACK_KERNEL",
    "KERNEL_ENV_VAR",
    "WORKERS_ENV_VAR",
    "EXECUTOR_ENV_VAR",
]

#: Environment variable overriding the default backend name.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Backend used when none is named (and the env var is unset).
DEFAULT_KERNEL = "auto"

#: Backend substituted when a request is unsupported and the chosen backend
#: declares no fallback of its own.  The gather kernel supports everything.
FALLBACK_KERNEL = "gather"


@dataclass(frozen=True)
class KernelRequest:
    """One batched multicore sweep, fully described.

    Attributes
    ----------
    X:
        ``(Q, n_cols)`` float64 query block *as stored in URAM* (already
        quantised by the caller to the design's query precision).
    plans:
        Per-partition stream plans, in partition order.
    accumulate_dtype:
        ``np.float64`` (exact fixed-point model) or ``np.float32``.
    local_k:
        Per-core scratchpad depth.
    operand:
        Optional collection-level contraction operand
        (:class:`~repro.core.kernels.contraction.ContractionOperand`)
        aligned with ``plans``; ``None`` disables the contraction backend
        unless it is requested by name.
    n_workers:
        Workers for partition-parallel execution (1 = inline).  Partition
        results are written by index, so scheduling cannot change any bit.
    query_chunk:
        Query-block chunk width; ``None`` lets each backend auto-tune it
        against its working-set size.  Chunking is bit-neutral (queries are
        independent rows of every intermediate).
    executor:
        ``"thread"`` or ``"process"`` partition fan-out (``None`` defers
        to ``$REPRO_KERNEL_EXECUTOR`` or the thread default); see
        :mod:`repro.core.kernels.executor`.  Bit-neutral like
        ``n_workers``.
    """

    X: np.ndarray
    plans: tuple
    accumulate_dtype: np.dtype
    local_k: int
    operand: "object | None" = None
    n_workers: int = 1
    query_chunk: "int | None" = None
    executor: "str | None" = None

    @property
    def n_queries(self) -> int:
        return int(self.X.shape[0])


@dataclass
class KernelOutput:
    """Per-partition, per-query results of one batched sweep.

    ``results[p][q]`` is partition ``p``'s local
    :class:`~repro.core.reference.TopKResult` for query ``q`` (partition-
    local row ids); ``accepts[p, q]`` its tracker-accept count.

    ``skipped_rows`` / ``total_rows`` count (row, query) pairs whose
    gather the backend provably skipped vs. offered in this run —
    diagnostics only (never part of any result bit), and zero for
    backends that do not skip.  Being carried on the per-run output,
    they are safe under concurrent engines and thread-parallel
    partitions, unlike any state on the registered backend singleton.
    """

    results: "list[list]"
    accepts: np.ndarray
    skipped_rows: int = 0
    total_rows: int = 0

    @property
    def skip_fraction(self) -> float:
        """Skipped share of this run's (row, query) pairs (0.0 when none)."""
        return self.skipped_rows / self.total_rows if self.total_rows else 0.0


class KernelBackend:
    """Interface every kernel backend implements (see module docstring)."""

    #: Registry name (stable; used by ``--kernel`` and ``REPRO_KERNEL``).
    name: str = ""

    #: Backend substituted by :func:`run_kernel` when :meth:`supports` says
    #: no.  Must itself support every request.
    fallback: str = FALLBACK_KERNEL

    def supports(self, request: KernelRequest) -> bool:
        """Whether this backend can serve ``request`` bit-identically."""
        return True

    def run(self, request: KernelRequest) -> KernelOutput:
        """Execute the sweep; only called when :meth:`supports` is true."""
        raise NotImplementedError

    def run_partition(self, index: int, plan, *, X, **params):
        """One partition's share of a sweep, as a *picklable* entry point.

        Partition-parallel backends implement this (and route ``run``
        through it) so the process executor can ship the bound method to
        spawn workers, which rebuild ``plan``/``X`` as zero-copy views
        over the shared-memory arena.  Implementations must return only
        freshly allocated arrays — never views of ``plan`` or ``X``.
        Collection-level backends (contraction) have no per-partition
        unit and leave this unimplemented.
        """
        raise NotImplementedError


_REGISTRY: "dict[str, KernelBackend]" = {}


def register_kernel(backend: KernelBackend) -> KernelBackend:
    """Add a backend to the registry (name must be unique); returns it."""
    if not backend.name:
        raise ConfigurationError("kernel backends need a non-empty name")
    if backend.name in _REGISTRY:
        raise ConfigurationError(f"kernel {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def get_kernel(name: str) -> KernelBackend:
    """Look a backend up by name; raises with the available set on miss."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown kernel {name!r}; available: {available_kernels()}"
        ) from exc


def available_kernels() -> "list[str]":
    """Registered backend names, in registration order."""
    return list(_REGISTRY)


def resolve_kernel_name(name: "str | None" = None) -> str:
    """An explicit name, else ``$REPRO_KERNEL``, else :data:`DEFAULT_KERNEL`."""
    resolved = name or os.environ.get(KERNEL_ENV_VAR) or DEFAULT_KERNEL
    get_kernel(resolved)  # fail fast on typos, including from the env
    return resolved


def auto_query_chunk(
    n_lanes: int,
    itemsize: int,
    n_queries: int,
    target_bytes: int = 4 << 20,
) -> int:
    """Query chunk sized so one gathered products block stays cache-resident.

    Replaces the old hardcoded 32: the ``(chunk, n_lanes)`` intermediate is
    held near ``target_bytes`` (default 4 MiB), clamped to [8, 128] and
    rounded down to a multiple of 8.  Chunk choice never changes any result
    bit — queries are independent rows of every intermediate — so this is a
    pure locality knob.
    """
    per_query = max(1, int(n_lanes) * int(itemsize))
    chunk = target_bytes // per_query
    chunk = max(8, min(128, (chunk // 8) * 8))
    return max(1, min(chunk, max(1, n_queries)))


def run_kernel(request: KernelRequest, kernel: "str | None" = None) -> KernelOutput:
    """Resolve, gate and execute one batched sweep.

    ``kernel`` may be a registry name or ``None`` (env var / default).  If
    the chosen backend does not support the request — e.g. the contraction
    backend on a design whose float32 accumulation order it cannot
    reproduce — its declared fallback runs instead, so the returned bits
    always honour the equivalence guarantee.
    """
    backend = get_kernel(resolve_kernel_name(kernel))
    if not backend.supports(request):
        backend = get_kernel(backend.fallback)
        if not backend.supports(request):  # pragma: no cover - registry bug
            backend = get_kernel(FALLBACK_KERNEL)
    return backend.run(request)
