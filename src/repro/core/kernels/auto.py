"""The default backend: first of the preference order that fits the request.

Preference: ``native`` (the compiled streaming fold — fastest whenever
Numba is installed, with per-query threshold skipping on top), then
``contraction`` (the fastest interpreted path when its exactness gate
passes, e.g. the paper's 20-bit design on quantised queries), then
``streaming`` (unconditionally bit-exact, tighter working set than the
reference and able to skip provably-rejected row blocks).  The reference
``gather`` kernel remains one ``--kernel gather`` away and is the fallback
of every backend here, so "auto" can never produce different bits than the
reference — only produce them faster.
"""

from __future__ import annotations

from repro.core.kernels.base import (
    KernelBackend,
    KernelOutput,
    KernelRequest,
    get_kernel,
    register_kernel,
)

__all__ = ["AutoKernel"]

#: Tried in order; the last entry must support every request.
PREFERENCE = ("native", "contraction", "streaming", "gather")


class AutoKernel(KernelBackend):
    """Delegating backend (see module docstring)."""

    name = "auto"
    fallback = "gather"

    def select(self, request: KernelRequest) -> KernelBackend:
        """The backend this request will actually run on."""
        for name in PREFERENCE:
            backend = get_kernel(name)
            if backend.supports(request):
                return backend
        return get_kernel(self.fallback)  # pragma: no cover - gather is total

    def run(self, request: KernelRequest) -> KernelOutput:
        return self.select(request).run(request)


register_kernel(AutoKernel())
