"""The reference kernel: broadcast gather + ``reduceat`` per partition.

This is the PR-1 batched hot path, extracted verbatim from
``core/dataflow.py``: for every partition the kept-lane values are gathered
against the query block, reduced per row with ``np.add.reduceat`` (the
numerical twin of the hardware's adder tree — same float32/float64 bits as
:meth:`~repro.core.dataflow.DataflowCore.run_fast`), and the full
``(Q, n_rows)`` score block is folded through the batch scratchpads once.

It supports every request unconditionally, which is what makes it the
registry's universal fallback; the other backends are judged bit-identical
against it (and, transitively, against ``run_fast``).
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels.base import (
    KernelBackend,
    KernelOutput,
    KernelRequest,
    auto_query_chunk,
    map_partitions,
    register_kernel,
)
from repro.core.kernels.scratchpad import BatchScratchpads

__all__ = ["GatherKernel", "run_plan_gather", "plan_row_scores"]


def plan_row_scores(
    X: np.ndarray,
    plan,
    accumulate_dtype: np.dtype,
    query_chunk: "int | None" = None,
) -> np.ndarray:
    """Every query's per-row scores for one partition plan, as float64.

    The score half of the reference computation: gather the kept lanes
    against the query block and reduce per row with ``np.add.reduceat`` —
    the numerical twin of the hardware's adder tree, so the returned bits
    are exactly what ``run_fast`` produces for each row (the float64
    upcast of a float32 accumulation is lossless).  Shared by the local
    Top-K path below and the multi-segment global fold
    (:mod:`repro.core.kernels.segmented`).
    """
    n_queries = X.shape[0]
    values = plan.kept_values.astype(accumulate_dtype)
    # Chunk the query dimension so the (chunk, kept_lanes) intermediates stay
    # cache-resident at large Q; rows are independent, so chunking cannot
    # change any per-query bit.
    chunk = query_chunk or auto_query_chunk(
        len(values), np.dtype(accumulate_dtype).itemsize, n_queries
    )
    row_values = np.empty((n_queries, plan.n_rows), dtype=np.float64)
    for q0 in range(0, n_queries, chunk):
        block = X[q0 : q0 + chunk].astype(accumulate_dtype)
        products = values[None, :] * block[:, plan.kept_idx]
        reduced = np.add.reduceat(products, plan.starts, axis=1)
        row_values[q0 : q0 + chunk] = reduced.astype(accumulate_dtype)
    return row_values


def run_plan_gather(
    X: np.ndarray,
    plan,
    accumulate_dtype: np.dtype,
    local_k: int,
    query_chunk: "int | None" = None,
):
    """One partition plan against a query block (the reference computation).

    Returns ``(results, accepts)`` for the partition — per-query local
    :class:`~repro.core.reference.TopKResult` plus accept counts.
    """
    n_queries = X.shape[0]
    pads = BatchScratchpads(n_queries, local_k)
    if plan.n_rows == 0:
        return pads.finish()
    pads.fold(plan_row_scores(X, plan, accumulate_dtype, query_chunk), 0)
    return pads.finish()


class GatherKernel(KernelBackend):
    """Reference backend (see module docstring)."""

    name = "gather"
    fallback = "gather"

    def run_partition(
        self,
        index,
        plan,
        *,
        X,
        accumulate_dtype,
        local_k,
        query_chunk=None,
    ):
        """One partition: ``(results, accepts)`` (the reference computation)."""
        return run_plan_gather(X, plan, accumulate_dtype, local_k, query_chunk)

    def run(self, request: KernelRequest) -> KernelOutput:
        params = {
            "accumulate_dtype": request.accumulate_dtype,
            "local_k": request.local_k,
            "query_chunk": request.query_chunk,
        }

        def one(i, plan):
            return self.run_partition(i, plan, X=request.X, **params)

        per_partition = map_partitions(
            one,
            request.plans,
            request.n_workers,
            executor=request.executor,
            process_fn=self.run_partition,
            process_params=params,
            X=request.X,
        )
        results = [r for r, _ in per_partition]
        accepts = (
            np.stack([a for _, a in per_partition])
            if per_partition
            else np.zeros((0, request.n_queries), dtype=np.int64)
        )
        return KernelOutput(results=results, accepts=accepts)


register_kernel(GatherKernel())
