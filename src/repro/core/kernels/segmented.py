"""Multi-segment query driver: per-segment sweeps, one global Top-K fold.

A :class:`~repro.core.segments.SegmentedCollection` cannot reuse the frozen
collections' candidate path as-is: per-partition ``local_k`` candidate sets
depend on the partition geometry, and a mutated collection's segments are
partitioned differently from the fresh ``compile_collection`` of the same
logical matrix.  What *is* geometry-invariant is the per-row score itself —
``run_fast`` reduces each row's kept lanes contiguously in column order, so
a row's score bits do not depend on which partition, packet or segment the
row sits in (the PR-4 kernel suite locks every backend to those bits).

The driver therefore computes per-row scores segment by segment (each with
the kernel backend best suited to it) and folds them — in live-row order:
segments in order, partitions in order, delta last — into **one global
depth-K** :class:`~repro.core.kernels.scratchpad.BatchScratchpads` per
query block.  Because incremental folding is bit-identical to a monolithic
fold (the scratchpad invariants of PR-4), the result is bit-identical to
querying a fresh compile of the equivalent final matrix through this same
driver — the property ``tests/property/test_prop_segments.py`` locks.

Per-segment kernel choice (``auto``):

* **native** everywhere, whenever the compiled backend is available
  (Numba installed, or interpreted mode forced): the same global-fold
  semantics as streaming below — the scratchpad state is exported dense,
  advanced by the compiled sweep (per-query screens against the carried
  thresholds, live rows renumbered to live-matrix ids) and imported back
  sequential-tracker-exact, so the cross-segment threshold carry-over is
  preserved bit for bit;
* **contraction** where the segment's exactness gate passes (fixed-point
  grid × Q1.31 queries × the 2^52 budget — judged by the registered
  backend's own ``supports``): one SciPy SpMM per segment, provably the
  same bits;
* **streaming** elsewhere: row blocks are screened against the *global*
  scratchpads' eviction thresholds before any lane is touched — and since
  the scratchpads carry the current global K-th score *across* segments,
  later segments skip more (the LSM win: a hot head segment warms the
  thresholds the tail segments are pruned by);
* **gather** for the unsealed delta buffer (a small 1-partition snapshot)
  and as the explicit-request fallback.

Tombstoned rows are excluded from the fold (their scores are computed with
their block but never offered), and surviving rows are renumbered to their
positions in the live logical matrix — exactly the ids a fresh compile
would produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataflow import DataflowStats
from repro.core.kernels.base import (
    KernelRequest,
    get_kernel,
    resolve_kernel_name,
)
from repro.core.kernels.gather import plan_row_scores
from repro.core.kernels.native import native_available, sweep_plan_into_pads
from repro.core.kernels.scratchpad import BatchScratchpads
from repro.core.kernels.streaming import screen_blocks
from repro.errors import ConfigurationError

__all__ = ["SegmentedOutput", "run_segmented", "select_segment_kernel"]


@dataclass
class SegmentedOutput:
    """Everything one multi-segment sweep produces.

    ``results[q]`` is query ``q``'s global Top-K (indices are positions in
    the live logical matrix; translate with
    :meth:`~repro.core.segments.SegmentedCollection.keys_for`).
    ``segment_kernels`` records which backend served each sealed segment in
    order (the delta, when present, always runs ``gather`` and is not
    listed).  ``skipped_rows``/``total_rows`` count live (row, query) pairs
    the streaming screens provably pruned vs. offered — diagnostics only.
    """

    results: list
    accepts: np.ndarray
    base_stats: DataflowStats
    segment_kernels: "tuple[str, ...]" = ()
    skipped_rows: int = 0
    total_rows: int = 0

    @property
    def skip_fraction(self) -> float:
        """Skipped share of live (row, query) pairs (0.0 when none)."""
        return self.skipped_rows / self.total_rows if self.total_rows else 0.0

    def stats_per_query(self) -> "list[DataflowStats]":
        """Whole-collection counters per query (accepts grafted in)."""
        from dataclasses import replace

        return [
            replace(self.base_stats, tracker_accepts=int(a)) for a in self.accepts
        ]


@dataclass
class _FoldCounters:
    """Mutable tallies shared by the per-segment fold helpers."""

    skipped: int = 0
    total: int = 0
    stats: DataflowStats = field(default_factory=DataflowStats)


def select_segment_kernel(
    artifact, X: np.ndarray, kernel: "str | None", accumulate_dtype, top_k: int
) -> str:
    """The backend that will sweep one sealed segment's artifact.

    Resolves the requested name exactly like the frozen-collection driver
    (:func:`~repro.core.kernels.base.run_kernel`): an explicit ``gather``/
    ``streaming`` is honoured as-is; an explicit ``native`` runs when the
    compiled backend is available and otherwise degrades to ``streaming``
    (its declared fallback); ``contraction`` runs only when the registered
    backend's exactness gate passes for this segment and query block
    (falling back to ``gather``, its declared fallback); ``auto`` prefers
    ``native`` when available, then the gated contraction, and streams
    otherwise.
    """
    name = resolve_kernel_name(kernel)
    if name == "native":
        return "native" if native_available() else "streaming"
    if name in ("gather", "streaming"):
        return name
    if name != "contraction" and native_available():
        return "native"
    gate = False
    if artifact.wants_contraction_operand("contraction"):
        request = KernelRequest(
            X=X,
            plans=tuple(artifact.stream_plans()),
            accumulate_dtype=np.dtype(accumulate_dtype),
            local_k=top_k,
            operand=artifact.contraction_operand(),
        )
        gate = get_kernel("contraction").supports(request)
    if name == "contraction":
        return "contraction" if gate else "gather"
    return "contraction" if gate else "streaming"


def _fold_scores(
    pads: BatchScratchpads,
    scores: np.ndarray,
    live: "np.ndarray | None",
    first_live: int,
) -> int:
    """Fold one (Q, n_rows) float64 score block, dead rows excluded.

    Returns the number of live rows folded.  Dropping dead columns before
    the fold is bit-neutral for the equivalent matrix (those rows simply do
    not exist in it), and the surviving columns keep their relative order,
    so ids ``first_live + j`` are exactly the live-matrix positions.
    """
    if live is not None and not live.all():
        scores = np.ascontiguousarray(scores[:, live])
    if scores.shape[1] == 0:
        return 0
    pads.fold(scores, first_live)
    return scores.shape[1]


def _fold_plan_gather(
    X, plan, live, pads, accumulate_dtype, first_live, counters
) -> int:
    """Reference fold of one partition plan (full score block, then fold)."""
    if plan.n_rows == 0:
        return 0
    scores = plan_row_scores(X, plan, accumulate_dtype)
    folded = _fold_scores(pads, scores, live, first_live)
    counters.total += folded * X.shape[0]
    return folded


def _fold_plan_streaming(
    X, plan, live, pads, accumulate_dtype, first_live, counters
) -> int:
    """Streaming fold of one partition plan against the *global* scratchpads.

    Mirrors :class:`~repro.core.kernels.streaming.StreamingKernel` block by
    block — same bound, same slack, same strict compare — except the
    thresholds screened against belong to the shared global fold, already
    warmed by every earlier segment, and tombstoned rows are given a zero
    bound weight (they are never offered, so they must never inhibit a
    skip).  The query block is not chunked: the scratchpads are shared
    state, so every query folds together.
    """
    n_rows = plan.n_rows
    if n_rows == 0:
        return 0
    acc = np.dtype(accumulate_dtype)
    values = plan.kept_values.astype(acc)
    starts = plan.starts
    seg_ends, blocks, block_peak = screen_blocks(plan, acc, live)

    live_cum = (
        np.concatenate([[0], np.cumsum(live, dtype=np.int64)])
        if live is not None
        else None
    )
    Xc = X.astype(acc)
    xmax = np.abs(Xc).max(axis=1).astype(np.float64)
    n_queries = Xc.shape[0]
    folded = 0
    for b in range(len(blocks) - 1):
        r0, r1 = int(blocks[b]), int(blocks[b + 1])
        if live_cum is None:
            n_live_block = r1 - r0
            block_first = first_live + r0
        else:
            n_live_block = int(live_cum[r1] - live_cum[r0])
            block_first = first_live + int(live_cum[r0])
        if n_live_block == 0:
            continue
        counters.total += n_live_block * n_queries
        bound = block_peak[b] * xmax
        if np.all(bound < pads.worst_thresholds()):
            pads.skip_rows(n_live_block)
            counters.skipped += n_live_block * n_queries
            folded += n_live_block
            continue
        l0 = int(starts[r0])
        l1 = int(seg_ends[r1 - 1])
        products = Xc[:, plan.kept_idx[l0:l1]]
        products *= values[None, l0:l1]
        reduced = np.add.reduceat(products, starts[r0:r1] - l0, axis=1)
        scores = reduced.astype(acc).astype(np.float64)
        folded += _fold_scores(
            pads, scores, None if live is None else live[r0:r1], block_first
        )
    return folded


def _fold_plan_native(
    X, plan, live, pads, accumulate_dtype, first_live, counters
) -> int:
    """Compiled fold of one partition plan against the *global* scratchpads.

    Delegates to :func:`~repro.core.kernels.native.sweep_plan_into_pads`:
    the scratchpad state crosses the dense export/import seam around the
    sweep, and the per-query screens refine the streaming fold's
    chunk-consensus skip (each skipped pair individually provably
    rejected), so the cross-segment threshold carry-over keeps the exact
    streaming-fold bits.
    """
    if plan.n_rows == 0:
        return 0
    skipped, n_live = sweep_plan_into_pads(
        X, plan, pads, accumulate_dtype, live, first_live
    )
    counters.total += n_live * X.shape[0]
    counters.skipped += skipped
    return n_live


def _fold_segment_contraction(
    segment, X, pads, first_live, counters
) -> int:
    """Contraction fold: one exact SpMM, partitions folded in row order."""
    artifact = segment.artifact
    operand = artifact.contraction_operand()
    scores = operand.matrix(X.shape[1]) @ X.T  # (n_rows, Q), provably exact
    offsets = operand.part_offsets
    live = None if segment.all_live else segment.live
    live_cum = segment.live_cumsum()
    folded = 0
    for p in range(len(operand.part_rows)):
        r0, r1 = int(offsets[p]), int(offsets[p + 1])
        if r1 == r0:
            continue
        block = np.ascontiguousarray(scores[r0:r1].T)
        part_live = None if live is None else live[r0:r1]
        n = _fold_scores(pads, block, part_live, first_live + int(live_cum[r0]))
        counters.total += n * X.shape[0]
        folded += n
    return folded


def _fold_segment_placed(
    segment, X, pads, accumulate_dtype, first_live, counters
) -> int:
    """Fold one sealed segment whose artifact has a row placement.

    A placed artifact's streams hold *permuted* rows, but the segment's
    ``keys``/``live`` are indexed by original artifact row — the per-plan
    fold loop of :func:`_fold_segment` (which slices ``live`` by stream
    position) would offer the wrong rows in the wrong order.  Per-row score
    bits are placement-invariant (row-contiguous ``reduceat``), so this
    path computes the full permuted score block, reorders columns through
    ``placement.inverse`` back to original row order, and folds once —
    offering exactly the sequence an identity compile of the same matrix
    would, hence unconditionally bit-identical, ties and float codecs
    included.  The streaming screens are forfeited for placed segments
    (scores for every row are materialised); the frozen query path is
    where a placed collection's skip win lives.
    """
    artifact = segment.artifact
    n_queries = X.shape[0]
    blocks = [
        plan_row_scores(X, plan, accumulate_dtype)
        for plan in artifact.stream_plans()
        if plan.n_rows
    ]
    if not blocks:
        return 0
    scores_perm = np.concatenate(blocks, axis=1)
    scores = np.ascontiguousarray(scores_perm[:, artifact.placement.inverse])
    live = None if segment.all_live else segment.live
    folded = _fold_scores(pads, scores, live, first_live)
    counters.total += folded * n_queries
    return folded


def _fold_segment(
    segment, X, pads, accumulate_dtype, kernel_name, first_live, counters
) -> int:
    """Fold one sealed segment; returns its live row count."""
    artifact = segment.artifact
    for plan in artifact.stream_plans():
        counters.stats = counters.stats.merge(plan.stats)
    if getattr(artifact, "placement", None) is not None:
        return _fold_segment_placed(
            segment, X, pads, accumulate_dtype, first_live, counters
        )
    if kernel_name == "contraction":
        return _fold_segment_contraction(segment, X, pads, first_live, counters)
    if kernel_name == "native":
        fold_plan = _fold_plan_native
    elif kernel_name == "streaming":
        fold_plan = _fold_plan_streaming
    else:
        fold_plan = _fold_plan_gather
    live = None if segment.all_live else segment.live
    live_cum = segment.live_cumsum()
    plans = artifact.stream_plans()
    folded = 0
    row = 0
    for plan in plans:
        part_live = None if live is None else live[row : row + plan.n_rows]
        folded += fold_plan(
            X,
            plan,
            part_live,
            pads,
            accumulate_dtype,
            first_live + int(live_cum[row]),
            counters,
        )
        row += plan.n_rows
    return folded


def run_segmented(
    collection,
    X: np.ndarray,
    top_k: int,
    kernel: "str | None" = None,
) -> SegmentedOutput:
    """Sweep a segmented collection: per-segment kernels, one global Top-K.

    Parameters
    ----------
    collection:
        A :class:`~repro.core.segments.SegmentedCollection`.
    X:
        ``(Q, n_cols)`` float64 query block *as stored in URAM* (already
        quantised by the caller; a 1-D query is promoted).
    top_k:
        Global scratchpad depth ``K`` — unlike the frozen candidate path
        there is no ``k·c`` cap, the fold is exact at any depth.
    kernel:
        Backend preference per segment (see :func:`select_segment_kernel`);
        ``None`` defers to ``$REPRO_KERNEL`` or the registry default.
        Every choice returns bit-identical results.
    """
    X = np.atleast_2d(np.asarray(X, dtype=np.float64))
    if X.ndim != 2 or X.shape[1] != collection.n_cols:
        raise ConfigurationError(
            f"queries must have shape (Q, {collection.n_cols}), got {X.shape}"
        )
    if top_k < 1:
        raise ConfigurationError(f"top_k must be >= 1, got {top_k}")
    acc = collection.design.accumulate_dtype
    pads = BatchScratchpads(X.shape[0], int(top_k))
    counters = _FoldCounters()
    kernels_used = []
    offset = 0
    for segment in collection.segments:
        # Placed artifacts take the dedicated inverse-reorder fold (see
        # _fold_segment_placed) — gather semantics, recorded as such.
        if getattr(segment.artifact, "placement", None) is not None:
            name = "gather"
        else:
            name = select_segment_kernel(segment.artifact, X, kernel, acc, top_k)
        kernels_used.append(name)
        offset += _fold_segment(segment, X, pads, acc, name, offset, counters)
    delta = collection.compiled_delta()
    if delta is not None:
        for plan in delta.stream_plans():
            counters.stats = counters.stats.merge(plan.stats)
            offset += _fold_plan_gather(
                X, plan, None, pads, acc, offset, counters
            )
    results, accepts = pads.finish()
    return SegmentedOutput(
        results=results,
        accepts=accepts,
        base_stats=counters.stats,
        segment_kernels=tuple(kernels_used),
        skipped_rows=counters.skipped,
        total_rows=counters.total,
    )
