"""Skew-aware row placement: which row lands in which HBM channel, and where.

The paper's multi-channel efficiency story (Sections III-A/V) silently
assumes rows are dealt across channels in original order — fine for the
uniform synthetic collections of the paper's experiments, but real
embedding corpora are Zipfian in nnz and norm.  Two measurable effects
hang on the row order:

* **channel balance** — the accelerator's makespan is the *slowest* core
  (see :meth:`repro.hw.multicore.TopKSpmvAccelerator.timing_from_packets`),
  so a channel that drew the heavy rows stalls the whole board;
* **threshold block-skip** — the streaming/native kernels prove whole row
  blocks unable to beat the current top-k thresholds and never read them
  (:func:`repro.core.kernels.streaming.screen_blocks`); the bound is the
  per-row |value| sum, so placing heavy rows *first* within a channel
  fills the scratchpads early and lets the light tail be skipped.

A :class:`Placement` captures a full row layout — a permutation plus the
partition boundaries cut into it — as a first-class artifact property:
:func:`repro.core.collection.compile_collection` accepts one, persists it
digest-covered, and every engine inverse-maps results back to original row
ids so top-k output is bit-identical to the unpermuted reference.

Strategies (:func:`plan_placement`):

``uniform``
    Original order, balanced contiguous blocks — today's behaviour and
    the default (resolves to *no* placement, keeping artifacts and
    digests byte-identical to pre-placement builds).
``norm_sorted``
    Rows in descending |value|-sum order, balanced blocks: maximises the
    provable block-skip (the screen bound is exactly this weight).
``nnz_balanced``
    Greedy LPT bin-packing of nnz across channels: minimises the nnz
    spread that makes the slowest channel the makespan.
``skew``
    Both: LPT channel assignment, then descending weight *within* each
    channel.  Balance picks the channel, skew picks the order inside it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.partition import partition_rows
from repro.errors import ConfigurationError
from repro.formats.csr import CSRMatrix

__all__ = [
    "PLACEMENT_STRATEGIES",
    "Placement",
    "default_boundaries",
    "plan_placement",
    "resolve_placement",
    "row_weights",
]

#: Strategy names accepted by :func:`plan_placement` (and the CLI).
PLACEMENT_STRATEGIES = ("uniform", "norm_sorted", "nnz_balanced", "skew")


def default_boundaries(n_rows: int, n_partitions: int) -> np.ndarray:
    """The balanced contiguous split ``partition_rows`` produces, as cuts."""
    parts = partition_rows(n_rows, n_partitions)
    return np.array([0] + [p.stop for p in parts], dtype=np.int64)


def row_weights(matrix: CSRMatrix) -> np.ndarray:
    """Per-row |value| sums — the streaming kernel's screen bound weight.

    ``screen_blocks`` proves a row unable to reach any scratchpad when
    ``Σ|v| · max|x| < threshold``, so this (not the L2 norm) is the
    quantity a skip-maximising placement must sort by.
    """
    row_of_nnz = np.repeat(
        np.arange(matrix.n_rows, dtype=np.int64), matrix.row_lengths()
    )
    return np.bincount(
        row_of_nnz, weights=np.abs(matrix.data), minlength=matrix.n_rows
    )


@dataclass
class Placement:
    """A persisted row layout: permutation + partition boundaries.

    Attributes
    ----------
    order:
        ``order[j]`` is the *original* row id stored at permuted position
        ``j`` — the map from stream space back to collection space.  The
        engines globalise kernel results through it, so candidates leave
        the engine in original ids and top-k stays bit-identical.
    boundaries:
        ``n_partitions + 1`` cuts into permuted space; partition ``p``
        holds permuted positions ``[boundaries[p], boundaries[p + 1])``.
    strategy:
        The strategy that produced this placement (provenance only; a
        hand-built or annealed placement reports ``"custom"``).
    """

    order: np.ndarray
    boundaries: np.ndarray
    strategy: str = "custom"

    def __post_init__(self) -> None:
        self.order = np.ascontiguousarray(self.order, dtype=np.int64)
        self.boundaries = np.ascontiguousarray(self.boundaries, dtype=np.int64)
        self.strategy = str(self.strategy)
        self.validate()

    def validate(self) -> None:
        """Check the permutation and the cuts; raise on violation."""
        n = len(self.order)
        if self.order.ndim != 1 or self.boundaries.ndim != 1:
            raise ConfigurationError("placement arrays must be 1-D")
        if len(self.boundaries) < 2:
            raise ConfigurationError(
                "boundaries needs at least 2 entries (one partition)"
            )
        if self.boundaries[0] != 0 or self.boundaries[-1] != n:
            raise ConfigurationError(
                f"boundaries must run 0..{n}, got "
                f"[{self.boundaries[0]}, {self.boundaries[-1]}]"
            )
        if (np.diff(self.boundaries) < 0).any():
            raise ConfigurationError("boundaries must be non-decreasing")
        seen = np.zeros(n, dtype=bool)
        if n:
            if self.order.min() < 0 or self.order.max() >= n:
                raise ConfigurationError(
                    f"order entries out of range [0, {n})"
                )
            seen[self.order] = True
        if not seen.all():
            raise ConfigurationError("order is not a permutation (repeats)")

    # ------------------------------------------------------------------ #
    # Shape
    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        """Rows the permutation covers."""
        return len(self.order)

    @property
    def n_partitions(self) -> int:
        """Channels the boundaries cut."""
        return len(self.boundaries) - 1

    @property
    def partition_sizes(self) -> np.ndarray:
        """Rows per partition."""
        return np.diff(self.boundaries)

    @cached_property
    def inverse(self) -> np.ndarray:
        """``inverse[original_row] = permuted position`` (cached)."""
        inv = np.empty(self.n_rows, dtype=np.int64)
        inv[self.order] = np.arange(self.n_rows, dtype=np.int64)
        return inv

    @property
    def is_identity(self) -> bool:
        """True when this placement changes nothing: original order and
        the default balanced cuts.  Identity placements are dropped at
        compile time so artifacts (and digests) stay byte-identical to
        builds that never heard of placement."""
        return bool(
            np.array_equal(self.order, np.arange(self.n_rows, dtype=np.int64))
            and np.array_equal(
                self.boundaries,
                default_boundaries(self.n_rows, self.n_partitions),
            )
        )

    @classmethod
    def identity(cls, n_rows: int, n_partitions: int) -> "Placement":
        """The do-nothing placement (original order, balanced cuts)."""
        return cls(
            order=np.arange(n_rows, dtype=np.int64),
            boundaries=default_boundaries(n_rows, n_partitions),
            strategy="uniform",
        )

    def with_boundaries(self, boundaries: np.ndarray) -> "Placement":
        """Same permutation, different cuts (the annealer's move)."""
        return Placement(
            order=self.order, boundaries=boundaries, strategy="custom"
        )


# ---------------------------------------------------------------------- #
# Strategy passes
# ---------------------------------------------------------------------- #
def _lpt_bins(loads: np.ndarray, n_partitions: int) -> "list[np.ndarray]":
    """Greedy LPT: heaviest row first into the least-loaded bin.

    Ties (equal bin loads) break on the lowest bin index; equal row loads
    keep ascending original id (stable sort) — fully deterministic.
    """
    order_desc = np.argsort(-loads, kind="stable")
    heap = [(0, b) for b in range(n_partitions)]
    bins: "list[list[int]]" = [[] for _ in range(n_partitions)]
    for r in order_desc:
        load, b = heapq.heappop(heap)
        bins[b].append(int(r))
        heapq.heappush(heap, (load + int(loads[r]), b))
    return [np.array(rows, dtype=np.int64) for rows in bins]


def plan_placement(
    strategy: str, matrix: CSRMatrix, n_partitions: int
) -> Placement:
    """Run one strategy pass over ``matrix`` (see module docstring)."""
    if n_partitions < 1:
        raise ConfigurationError(f"n_partitions must be >= 1, got {n_partitions}")
    n = matrix.n_rows
    if strategy == "uniform":
        return Placement.identity(n, n_partitions)
    if strategy == "norm_sorted":
        order = np.argsort(-row_weights(matrix), kind="stable")
        return Placement(
            order=order,
            boundaries=default_boundaries(n, n_partitions),
            strategy=strategy,
        )
    if strategy in ("nnz_balanced", "skew"):
        nnz = matrix.row_lengths().astype(np.int64)
        bins = _lpt_bins(nnz, n_partitions)
        if strategy == "nnz_balanced":
            bins = [np.sort(rows) for rows in bins]
        else:
            weights = row_weights(matrix)
            # Descending weight within the channel (ties: ascending id):
            # heavy rows fill the scratchpads early, the light tail skips.
            bins = [
                rows[np.lexsort((rows, -weights[rows]))] for rows in bins
            ]
        order = (
            np.concatenate(bins) if bins else np.empty(0, dtype=np.int64)
        )
        sizes = np.array([len(rows) for rows in bins], dtype=np.int64)
        boundaries = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        return Placement(order=order, boundaries=boundaries, strategy=strategy)
    raise ConfigurationError(
        f"unknown placement strategy {strategy!r}; "
        f"choose from {PLACEMENT_STRATEGIES}"
    )


def resolve_placement(
    placement, matrix: CSRMatrix, n_partitions: int
) -> "Placement | None":
    """Normalise a ``placement=`` argument to ``Placement | None``.

    Accepts ``None`` / a strategy name / a :class:`Placement`.  Identity
    results collapse to ``None`` so the compile pipeline (and digests)
    behave exactly as before this layer existed.
    """
    if placement is None:
        return None
    if isinstance(placement, str):
        placement = plan_placement(placement, matrix, n_partitions)
    if not isinstance(placement, Placement):
        raise ConfigurationError(
            f"placement must be a strategy name or Placement, "
            f"got {type(placement).__name__}"
        )
    if placement.n_rows != matrix.n_rows:
        raise ConfigurationError(
            f"placement covers {placement.n_rows} rows, "
            f"matrix has {matrix.n_rows}"
        )
    if placement.n_partitions != n_partitions:
        raise ConfigurationError(
            f"placement cuts {placement.n_partitions} partitions, "
            f"compile requested {n_partitions}"
        )
    if placement.is_identity:
        return None
    return placement
