"""The compiled, query-independent half of the accelerator: one build pipeline.

The paper separates a one-time preprocessing phase — row partitioning across
HBM channels plus BS-CSR packing (Sections III-A/III-B) — from the streaming
query phase.  :class:`CompiledCollection` makes that split explicit in the
reproduction: it owns *everything* that does not depend on the query —

* the original float64 collection (kept for exact references and baselines);
* the resolved :class:`~repro.hw.design.AcceleratorDesign` (the layout/codec
  the values were quantised with);
* the per-partition BS-CSR streams as structure-of-arrays numpy buffers;
* the lazily-built per-partition :class:`~repro.core.dataflow.StreamPlan`
  cache shared by every consumer (single-board engine, sharded fleet);
* a SHA-256 content digest identifying the artifact.

One shared pipeline (:func:`compile_collection`) builds it; every downstream
layer — :class:`~repro.core.engine.TopKSpmvEngine`,
:class:`~repro.serving.sharded.ShardedEngine`, the baselines, the CLI —
constructs *from* it instead of re-running partition/encode/plan logic.

``save``/``load`` persist the artifact as one uncompressed ``.npz`` with a
JSON header (see :func:`repro.formats.io.save_artifact`).  Loading performs
no encoding: the stacked packet buffers come back verbatim and per-partition
streams are plain row slices (views) of them, so a serving process restarts
in I/O time rather than re-encode time.
"""

from __future__ import annotations

from dataclasses import asdict, replace

import numpy as np

from repro.core.dataflow import StreamPlan, plan_stream
from repro.core.kernels.contraction import (
    ContractionOperand,
    codec_grid_bits,
    lower_plans,
)
from repro.core.placement import Placement, resolve_placement
from repro.errors import ConfigurationError, FormatError
from repro.formats.bscsr import BSCSRMatrix, BSCSRStream
from repro.formats.csr import CSRMatrix
from repro.formats.io import artifact_digest, load_artifact, save_artifact
from repro.hw.design import AcceleratorDesign, PAPER_DESIGNS

__all__ = [
    "CompiledCollection",
    "compile_collection",
    "resolve_design",
    "original_matrix",
    "Segment",
    "SegmentedCollection",
]

#: Artifact ``kind`` tag in the persisted header.
COLLECTION_KIND = "compiled-collection"


def __getattr__(name):
    # Lazy re-export of the mutable-collection layer: ``Segment`` and
    # ``SegmentedCollection`` are the collection API too, but live in
    # :mod:`repro.core.segments` (which imports this module).
    if name in ("Segment", "SegmentedCollection"):
        from repro.core import segments

        return getattr(segments, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def check_design_compatible(collection: "CompiledCollection", design, action: str) -> None:
    """Raise unless ``design`` matches what ``collection`` was compiled for.

    ``None`` always passes (the artifact's own design is used).  Comparison
    happens post-resolution: the artifact stores the auto-widened design, so
    re-passing the design it was compiled with is not a conflict.
    """
    if design is not None and resolve_design(collection.matrix, design) != collection.design:
        raise ConfigurationError(
            f"collection was compiled for {collection.design.name!r}; "
            f"cannot {action} it as {design.name!r} — recompile instead"
        )


def original_matrix(matrix):
    """Unwrap a :class:`CompiledCollection` to its original float64 matrix.

    Anything else passes through unchanged.  Consumers that only need the
    unencoded collection (CPU/GPU baselines, exact references) use this so
    they accept the same compiled artifact the accelerator engines serve.
    """
    if isinstance(matrix, CompiledCollection):
        return matrix.matrix
    return matrix


def resolve_design(matrix: CSRMatrix, design: "AcceleratorDesign | None") -> AcceleratorDesign:
    """The design actually compiled against: default 20b, widened to fit M.

    If the matrix is wider than the design's ``max_columns``, the packet
    layout is re-solved for the real width (fewer lanes per packet) — the
    same rule every engine applied individually before this pipeline existed.
    """
    if design is None:
        design = PAPER_DESIGNS["20b"]
    if matrix.n_cols > design.max_columns:
        design = replace(design, max_columns=matrix.n_cols)
    return design


def compile_collection(
    matrix,
    design: "AcceleratorDesign | None" = None,
    n_partitions: "int | None" = None,
    placement=None,
) -> "CompiledCollection":
    """Partition + quantise + encode a collection: the one build pipeline.

    Parameters
    ----------
    matrix:
        The sparse embedding collection; any of
        :class:`~repro.formats.csr.CSRMatrix`, SciPy sparse, dense array.
    design:
        Accelerator design point; defaults to the paper's best (20-bit fixed
        point, 32 cores).  Widened automatically when the matrix is wider
        than ``design.max_columns``.
    n_partitions:
        Stream count override; defaults to ``design.cores`` (one stream per
        core / HBM channel).
    placement:
        Row→channel layout: ``None``/``"uniform"`` (original order, the
        default), a strategy name from
        :data:`~repro.core.placement.PLACEMENT_STRATEGIES`, or a
        :class:`~repro.core.placement.Placement`.  The permutation is
        applied *before* encoding and persisted (digest-covered) with the
        artifact; ``collection.matrix`` keeps the original row order and
        every engine inverse-maps results, so placement never changes
        top-k output — only channel balance and block-skip.
    """
    from repro.core.engine import as_csr_matrix  # deferred: engine imports us

    matrix = as_csr_matrix(matrix)
    design = resolve_design(matrix, design)
    n_parts = design.cores if n_partitions is None else n_partitions
    placement = resolve_placement(placement, matrix, n_parts)
    encode_input = matrix if placement is None else matrix.take_rows(placement.order)
    encoded = BSCSRMatrix.encode(
        encode_input,
        layout=design.layout,
        codec=design.codec,
        n_partitions=n_parts,
        rows_per_packet=design.effective_rows_per_packet,
        boundaries=None if placement is None else placement.boundaries,
    )
    return CompiledCollection(
        matrix=matrix, design=design, encoded=encoded, placement=placement
    )


class CompiledCollection:
    """One compiled, servable embedding collection (see module docstring).

    Construct via :func:`compile_collection` or :meth:`load`; the raw
    constructor only wires pre-built parts together.
    """

    def __init__(
        self,
        matrix: CSRMatrix,
        design: AcceleratorDesign,
        encoded: BSCSRMatrix,
        placement: "Placement | None" = None,
    ):
        if encoded.n_rows != matrix.n_rows or encoded.n_cols != matrix.n_cols:
            raise ConfigurationError(
                f"encoded shape ({encoded.n_rows}, {encoded.n_cols}) disagrees "
                f"with matrix shape {matrix.shape}"
            )
        if placement is not None and (
            placement.n_rows != matrix.n_rows
            or placement.n_partitions != encoded.n_partitions
        ):
            raise ConfigurationError(
                f"placement shape ({placement.n_rows} rows, "
                f"{placement.n_partitions} partitions) disagrees with the "
                f"encoded collection ({matrix.n_rows} rows, "
                f"{encoded.n_partitions} partitions)"
            )
        self.matrix = matrix
        self.design = design
        self.encoded = encoded
        self.placement = placement
        self._plans: "list[StreamPlan | None]" = [None] * encoded.n_partitions
        self._plans_all: "list[StreamPlan] | None" = None
        self._operand: "ContractionOperand | None" = None

    # ------------------------------------------------------------------ #
    # Shape and size
    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        """Collection size N."""
        return self.matrix.n_rows

    @property
    def n_cols(self) -> int:
        """Embedding dimension M."""
        return self.matrix.n_cols

    @property
    def nnz(self) -> int:
        """Genuine non-zeros stored across all partitions."""
        return self.encoded.nnz

    @property
    def n_partitions(self) -> int:
        """Partition streams (= cores = HBM channels on one board)."""
        return self.encoded.n_partitions

    @property
    def row_map(self) -> "np.ndarray | None":
        """Stream-position → original-row map the engines globalise through.

        ``None`` for identity placements: kernel-local indices plus the
        partition's global row offset already *are* original row ids.
        """
        return None if self.placement is None else self.placement.order

    def channel_stats(self) -> "dict[str, np.ndarray | float]":
        """Per-partition nnz/packet counts and the nnz imbalance ratio.

        ``imbalance`` is max/mean nnz across channels — 1.0 is a perfectly
        balanced board; the makespan core is ~``imbalance``x the average.
        """
        part_nnz = np.array([s.nnz for s in self.encoded.streams], dtype=np.int64)
        part_packets = np.array(
            [s.n_packets for s in self.encoded.streams], dtype=np.int64
        )
        part_rows = np.array([s.n_rows for s in self.encoded.streams], dtype=np.int64)
        mean_nnz = float(part_nnz.mean()) if len(part_nnz) else 0.0
        imbalance = float(part_nnz.max() / mean_nnz) if mean_nnz > 0 else 1.0
        return {
            "part_nnz": part_nnz,
            "part_packets": part_packets,
            "part_rows": part_rows,
            "imbalance": imbalance,
        }

    def describe(self) -> str:
        """Multi-line summary of the compiled artifact, including the
        per-channel nnz/packet histogram — skew is visible before and
        after tuning."""
        stats = self.channel_stats()
        part_nnz, part_packets = stats["part_nnz"], stats["part_packets"]
        placement_line = (
            "placement: uniform (original row order)"
            if self.placement is None
            else f"placement: {self.placement.strategy} (permuted rows)"
        )
        lines = [
            self.design.describe(),
            f"matrix: {self.n_rows} rows x {self.n_cols} cols, "
            f"{self.nnz} non-zeros",
            f"BS-CSR: {self.encoded.total_packets} packets, "
            f"{self.encoded.total_bytes / 1e6:.2f} MB across "
            f"{self.n_partitions} channels",
            placement_line,
            f"channel imbalance: max/mean nnz = {stats['imbalance']:.2f}x",
        ]
        peak = int(part_nnz.max()) if len(part_nnz) else 0
        for p in range(self.n_partitions):
            bar = "#" * (
                round(24 * int(part_nnz[p]) / peak) if peak else 0
            )
            lines.append(
                f"  ch {p:>3}: nnz {int(part_nnz[p]):>10}  "
                f"packets {int(part_packets[p]):>8}  |{bar}"
            )
        lines.append(f"digest: {self.digest[:16]}…")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Stream plans — the single lazy cache every consumer shares
    # ------------------------------------------------------------------ #
    def stream_plans(self) -> "list[StreamPlan]":
        """All per-partition batch plans (built on first use, then cached)."""
        if self._plans_all is None:
            self._plans_all = self.stream_plans_range(0, self.n_partitions)
        return self._plans_all

    def stream_plans_range(self, start: int, stop: int) -> "list[StreamPlan]":
        """Plans for partitions ``[start, stop)``, sharing the same cache.

        A sharded deployment only ever pays for the plans its shards
        actually stream — and a shard slicing this collection reuses any
        plan another consumer already built.
        """
        if not 0 <= start <= stop <= self.n_partitions:
            raise ConfigurationError(
                f"invalid partition range [{start}, {stop}) for "
                f"{self.n_partitions} partitions"
            )
        for i in range(start, stop):
            if self._plans[i] is None:
                self._plans[i] = plan_stream(self.encoded.streams[i])
        return self._plans[start:stop]

    def contraction_grid_bits(self) -> "int | None":
        """Fraction bits of the design's value grid, without lowering.

        ``None`` (float32/exact codecs) means the contraction kernel's
        exactness gate can never pass for this collection — callers use
        this to skip the O(nnz) :meth:`contraction_operand` build on the
        save and auto-kernel paths for gateless designs.
        """
        return codec_grid_bits(self.design.codec)

    def wants_contraction_operand(self, kernel_name: str) -> bool:
        """Whether a *resolved* kernel name should be handed the operand.

        The single operand-eligibility policy for every engine:
        ``"contraction"`` and ``"auto"`` get the cached operand only when
        the design's codec grid could ever pass the exactness gate — a
        gateless design is guaranteed to fall back to gather with
        identical bits whether the operand is present or not (and the
        dataflow driver never re-lowers for it either), so nobody pays
        its O(nnz) build or memory cost.  Gather/streaming never take it.
        """
        return (
            kernel_name in ("contraction", "auto")
            and self.contraction_grid_bits() is not None
        )

    def contraction_operand(self) -> ContractionOperand:
        """The collection-level CSR operand for the contraction kernel.

        Lowered from the stream plans once per compiled collection (on
        first batch use or at :meth:`save`, which persists it; loading
        restores the buffers verbatim) and shared by every consumer, like
        the plan cache it is derived from.
        """
        if self._operand is None:
            plans = self.stream_plans()
            self._operand = lower_plans(plans, [self.design.codec] * len(plans))
        return self._operand

    def stream_slice(self, start: int, stop: int) -> BSCSRMatrix:
        """Partitions ``[start, stop)`` as a BSCSRMatrix sharing this
        collection's stream buffers (no re-encode, no copies).

        ``row_offsets`` stay global, so candidates produced from the slice
        merge directly with other slices' — the aligned-sharding contract.
        """
        if not 0 <= start <= stop <= self.n_partitions:
            raise ConfigurationError(
                f"invalid partition range [{start}, {stop}) for "
                f"{self.n_partitions} partitions"
            )
        return BSCSRMatrix(
            streams=self.encoded.streams[start:stop],
            row_offsets=self.encoded.row_offsets[start:stop],
            n_rows=self.encoded.n_rows,
            n_cols=self.encoded.n_cols,
        )

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    @property
    def digest(self) -> str:
        """SHA-256 content digest over every persisted buffer (cached)."""
        cached = getattr(self, "_digest", None)
        if cached is None:
            cached = self._digest = artifact_digest(self._payload_arrays())
        return cached

    def _payload_arrays(self) -> "dict[str, np.ndarray]":
        streams = self.encoded.streams
        lanes = self.design.layout.lanes
        if streams:
            new_row = np.concatenate([s.new_row for s in streams])
            ptr = np.concatenate([s.ptr for s in streams])
            idx = np.concatenate([s.idx for s in streams])
            val_raw = np.concatenate([s.val_raw for s in streams])
        else:
            new_row = np.zeros(0, dtype=bool)
            ptr = np.zeros((0, lanes), dtype=np.uint16)
            idx = np.zeros((0, lanes), dtype=np.int64)
            val_raw = np.zeros((0, lanes), dtype=np.uint64)
        packet_offsets = np.concatenate(
            [[0], np.cumsum([s.n_packets for s in streams], dtype=np.int64)]
        ).astype(np.int64)
        placement_arrays = (
            {}
            if self.placement is None
            # Digest-covered (these are primary payload arrays): a placed
            # artifact's identity includes its permutation.  Identity
            # placements persist nothing, so pre-placement artifacts and
            # their digests are byte-identical.
            else {
                "placement_order": self.placement.order,
                "placement_boundaries": self.placement.boundaries,
            }
        )
        return {
            **placement_arrays,
            "matrix_indptr": self.matrix.indptr,
            "matrix_indices": self.matrix.indices,
            "matrix_data": self.matrix.data,
            "row_offsets": np.asarray(self.encoded.row_offsets, dtype=np.int64),
            "packet_offsets": packet_offsets,
            "part_n_rows": np.array([s.n_rows for s in streams], dtype=np.int64),
            "part_nnz": np.array([s.nnz for s in streams], dtype=np.int64),
            "new_row": new_row,
            "ptr": ptr,
            "idx": idx,
            "val_raw": val_raw,
        }

    def _aux_arrays(self) -> "dict[str, np.ndarray]":
        """Derived buffers persisted outside the content digest.

        The contraction operand is lowered from the streams, so it is a
        cache, not content: it rides along under the artifact's aux digest
        (see :func:`repro.formats.io.save_artifact`) and artifacts written
        before it existed still load — the operand is then rebuilt lazily.
        Designs with no fixed value grid (float32/exact codecs) persist
        nothing: the contraction kernel is permanently gated off for them,
        so the operand would be dead weight in every load — they
        short-circuit on the codec grid and never pay the lowering.
        """
        if self.contraction_grid_bits() is None:
            return {}
        operand = self.contraction_operand()
        if operand.value_grid_bits is None:  # e.g. an empty collection
            return {}
        return {
            "op_data": operand.data,
            "op_indices": operand.indices,
            "op_indptr": operand.indptr,
        }

    def _header(self) -> dict:
        design_fields = asdict(self.design)
        operand_meta = None
        if self.contraction_grid_bits() is not None:
            operand = self.contraction_operand()
            if operand.value_grid_bits is not None:
                operand_meta = {
                    "value_grid_bits": operand.value_grid_bits,
                    "max_abs_row_raw": operand.max_abs_row_raw,
                }
        return {
            "design": design_fields,
            "codec": self.design.codec.name,
            "layout": {
                "lanes": self.design.layout.lanes,
                "ptr_bits": self.design.layout.ptr_bits,
                "idx_bits": self.design.layout.idx_bits,
                "val_bits": self.design.layout.val_bits,
                "packet_bits": self.design.layout.packet_bits,
            },
            "rows_per_packet": self.design.effective_rows_per_packet,
            "n_rows": self.n_rows,
            "n_cols": self.n_cols,
            "nnz": self.nnz,
            "n_partitions": self.n_partitions,
            "operand": operand_meta,
            "placement": (
                None
                if self.placement is None
                else {"strategy": self.placement.strategy}
            ),
        }

    def save(self, path) -> None:
        """Persist the whole artifact as one ``.npz`` with a JSON header.

        The file lands at exactly ``path`` (no ``.npz`` suffix is appended).
        """
        self._digest = save_artifact(
            path,
            COLLECTION_KIND,
            self._header(),
            self._payload_arrays(),
            aux_arrays=self._aux_arrays(),
        )

    @classmethod
    def load(cls, path, verify: bool = True) -> "CompiledCollection":
        """Reload an artifact saved by :meth:`save` — no re-encode.

        Per-partition streams are row slices (numpy views) of the stacked
        packet buffers exactly as stored; the build pipeline is never
        invoked.  ``verify`` (default) re-derives the content digest and
        raises :class:`~repro.errors.FormatError` on mismatch.
        """
        header, arrays = load_artifact(path, COLLECTION_KIND, verify=verify)
        try:
            return cls._from_payload(path, header, arrays)
        except (KeyError, TypeError) as exc:
            raise FormatError(
                f"{path} has an incomplete collection header or buffer set"
            ) from exc

    @classmethod
    def _from_payload(cls, path, header: dict, arrays: "dict[str, np.ndarray]") -> "CompiledCollection":
        design = AcceleratorDesign(**header["design"])
        layout_fields = header["layout"]
        codec_name = header["codec"]
        n_partitions = int(header["n_partitions"])
        if design.codec.name != codec_name:
            raise FormatError(
                f"{path}: header codec {codec_name!r} disagrees with the "
                f"design's codec {design.codec.name!r}"
            )
        actual_layout = {
            "lanes": design.layout.lanes,
            "ptr_bits": design.layout.ptr_bits,
            "idx_bits": design.layout.idx_bits,
            "val_bits": design.layout.val_bits,
            "packet_bits": design.layout.packet_bits,
        }
        if actual_layout != layout_fields:
            raise FormatError(
                f"{path}: header layout {layout_fields} disagrees with the "
                f"design's layout {actual_layout}"
            )
        matrix = CSRMatrix(
            indptr=arrays["matrix_indptr"],
            indices=arrays["matrix_indices"],
            data=arrays["matrix_data"],
            n_cols=int(header["n_cols"]),
        )
        offsets = arrays["packet_offsets"]
        if len(offsets) != n_partitions + 1:
            raise FormatError(
                f"{path}: {len(offsets)} packet offsets for "
                f"{n_partitions} partitions"
            )
        streams = []
        for i in range(n_partitions):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            streams.append(
                BSCSRStream(
                    layout=design.layout,
                    codec=design.codec,
                    n_rows=int(arrays["part_n_rows"][i]),
                    n_cols=matrix.n_cols,
                    nnz=int(arrays["part_nnz"][i]),
                    new_row=arrays["new_row"][lo:hi],
                    ptr=arrays["ptr"][lo:hi],
                    idx=arrays["idx"][lo:hi],
                    val_raw=arrays["val_raw"][lo:hi],
                    rows_per_packet=int(header["rows_per_packet"]),
                )
            )
        encoded = BSCSRMatrix(
            streams=streams,
            row_offsets=arrays["row_offsets"],
            n_rows=matrix.n_rows,
            n_cols=matrix.n_cols,
        )
        placement = None
        if "placement_order" in arrays:
            meta = header.get("placement") or {}
            placement = Placement(
                order=arrays["placement_order"],
                boundaries=arrays["placement_boundaries"],
                strategy=meta.get("strategy", "custom"),
            )
        # Legacy artifacts (no placement buffers) load as identity:
        # ``placement`` stays None and every query path behaves as before.
        collection = cls(
            matrix=matrix, design=design, encoded=encoded, placement=placement
        )
        collection._digest = header["digest"]
        if "op_data" in arrays:
            meta = header.get("operand") or {}
            grid_bits = meta.get("value_grid_bits")
            collection._operand = ContractionOperand(
                data=arrays["op_data"],
                indices=arrays["op_indices"],
                indptr=arrays["op_indptr"],
                part_rows=arrays["part_n_rows"],
                value_grid_bits=None if grid_bits is None else int(grid_bits),
                max_abs_row_raw=float(meta.get("max_abs_row_raw", 0.0)),
            )
        return collection
