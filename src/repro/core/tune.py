"""Placement auto-tuner: search row layouts against a cost model + probes.

The searchable half of the placement layer (:mod:`repro.core.placement`).
Two ingredients:

* **cost model** (:func:`score_placement`) — per-partition packet counts
  feed :meth:`~repro.hw.multicore.TopKSpmvAccelerator.timing_from_packets`
  (channel balance: the makespan core), and a skip-fraction estimator
  predicts how much of each channel the streaming/native kernels' provable
  block-skip would prune for a probe-query set.  The estimator is
  *calibrated*: one measured :attr:`KernelOutput.skip_fraction` on a real
  compiled candidate fixes a multiplicative ``alpha`` that absorbs what
  the final-threshold approximation cannot see (threshold warm-up order,
  block granularity, chunk-consensus screening).
* **search** (:func:`tune_placement`) — score every strategy pass, anneal
  random boundary shifts on the best candidate (simulated annealing with a
  deterministic seed), then *measure* the finalists: compile each, run the
  streaming kernel on the probe block, and pick the winner by measured
  effective scan time ``makespan x (1 - skip)``.

The winning :class:`~repro.core.placement.Placement` compiles into an
ordinary artifact (``repro tune`` persists it); placement never changes
top-k output, so the tuner optimises performance only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.placement import (
    PLACEMENT_STRATEGIES,
    Placement,
    plan_placement,
    row_weights,
)
from repro.errors import ConfigurationError
from repro.formats.stats import count_packets
from repro.hw.multicore import TopKSpmvAccelerator

__all__ = [
    "PlacementScore",
    "TuneCandidate",
    "TuneReport",
    "measure_skip_fraction",
    "score_placement",
    "tune_placement",
]


@dataclass(frozen=True)
class PlacementScore:
    """Cost-model verdict on one candidate placement."""

    makespan_s: float
    effective_s: float
    est_skip_fraction: float
    imbalance: float
    packets_per_core: "tuple[int, ...]"
    part_nnz: "tuple[int, ...]"

    @property
    def cost(self) -> float:
        """The scalar the search minimises (lower is better)."""
        return self.effective_s


@dataclass
class TuneCandidate:
    """One strategy (or annealed variant) with its model/measured scores."""

    strategy: str
    placement: Placement
    score: PlacementScore
    measured_skip_fraction: "float | None" = None
    measured_effective_s: "float | None" = None

    def report(self) -> dict:
        """JSON-ready summary row."""
        return {
            "strategy": self.strategy,
            "makespan_s": self.score.makespan_s,
            "model_effective_s": self.score.effective_s,
            "model_skip_fraction": self.score.est_skip_fraction,
            "nnz_imbalance": self.score.imbalance,
            "measured_skip_fraction": self.measured_skip_fraction,
            "measured_effective_s": self.measured_effective_s,
        }


@dataclass
class TuneReport:
    """Everything one :func:`tune_placement` run produces."""

    winner: TuneCandidate
    candidates: "list[TuneCandidate]" = field(default_factory=list)
    skip_alpha: float = 1.0
    n_probes: int = 0
    seed: int = 0

    @property
    def placement(self) -> Placement:
        """The winning placement (compile with ``placement=`` to use it)."""
        return self.winner.placement

    def to_payload(self) -> dict:
        """JSON-serialisable report (what ``repro tune --json`` emits)."""
        uniform = next(
            (c for c in self.candidates if c.strategy == "uniform"), None
        )
        payload = {
            "winner": self.winner.report(),
            "candidates": [c.report() for c in self.candidates],
            "skip_alpha": self.skip_alpha,
            "n_probes": self.n_probes,
            "seed": self.seed,
        }
        if uniform is not None and uniform.score.effective_s > 0:
            payload["model_speedup_vs_uniform"] = (
                uniform.score.effective_s / self.winner.score.effective_s
            )
        if (
            uniform is not None
            and uniform.measured_effective_s
            and self.winner.measured_effective_s
        ):
            payload["measured_speedup_vs_uniform"] = (
                uniform.measured_effective_s / self.winner.measured_effective_s
            )
        return payload


def _partition_rows_of(placement: Placement) -> "list[np.ndarray]":
    """Original row ids per partition, in stream order."""
    b = placement.boundaries
    return [
        placement.order[int(b[p]) : int(b[p + 1])]
        for p in range(placement.n_partitions)
    ]


def _estimate_partition_skip(
    part_scores: np.ndarray,
    part_weights: np.ndarray,
    part_lengths: np.ndarray,
    xmax: np.ndarray,
    local_k: int,
) -> float:
    """Final-threshold skip estimate for one partition over all probes.

    Mirrors the streaming screen's actual granularity: rows are grouped
    into lane-budget blocks *in stream order*, a block's bound is its peak
    ``weight · max|x_q|``, and — like the kernel's chunk consensus — a
    block only skips when the bound clears the threshold for **every**
    probe.  τ per probe is the partition's ``local_k``-th best score (the
    value the thresholds converge to); ``alpha`` calibrates what the
    final-threshold approximation cannot see (warm-up order, lane caps).

    This is why the estimator ranks placements correctly: a per-row
    estimate would call a scattered (uniform) layout just as prunable as
    a sorted one, but one heavy row per block pins the whole block.
    """
    from repro.core.kernels.streaming import _BLOCK_LANE_BUDGET, _block_bounds

    n_rows, n_probes = part_scores.shape
    if n_rows <= local_k:
        return 0.0
    # τ per probe: the local_k-th largest score in this partition.
    thresholds = -np.partition(-part_scores, local_k - 1, axis=0)[local_k - 1]
    starts = np.concatenate([[0], np.cumsum(part_lengths[:-1])]).astype(np.int64)
    blocks = _block_bounds(starts, int(part_lengths.sum()), _BLOCK_LANE_BUDGET)
    peaks = np.maximum.reduceat(part_weights, blocks[:-1])
    skipped = 0
    for b in range(len(blocks) - 1):
        if np.all(peaks[b] * xmax < thresholds):
            skipped += int(blocks[b + 1] - blocks[b])
    return skipped / n_rows


def score_placement(
    matrix,
    design,
    placement: Placement,
    probes: "np.ndarray | None" = None,
    probe_scores: "np.ndarray | None" = None,
    skip_alpha: float = 1.0,
    accelerator: "TopKSpmvAccelerator | None" = None,
) -> PlacementScore:
    """Cost-model one candidate placement (no compile, no encode).

    ``probe_scores`` (``(n_rows, Q)`` exact float64 scores of the probe
    block, original row order) can be precomputed once per tune run and
    shared across every candidate — the dominant cost at tune scale.
    """
    lanes = design.layout.lanes
    rpp = design.effective_rows_per_packet
    lengths = matrix.row_lengths().astype(np.int64)
    weights = row_weights(matrix)
    if accelerator is None:
        accelerator = TopKSpmvAccelerator(design)
    if probes is not None and probe_scores is None:
        probe_scores = matrix.to_scipy() @ probes.T
    xmax = (
        np.abs(probes).max(axis=1).astype(np.float64)
        if probes is not None
        else None
    )

    parts = _partition_rows_of(placement)
    packets = []
    part_nnz = []
    skips = []
    for rows in parts:
        n_pack, _, _ = count_packets(lengths[rows], lanes, rpp)
        packets.append(int(n_pack))
        part_nnz.append(int(lengths[rows].sum()))
        if probe_scores is not None and len(rows):
            skips.append(
                _estimate_partition_skip(
                    probe_scores[rows],
                    weights[rows],
                    lengths[rows],
                    xmax,
                    design.local_k,
                )
            )
        else:
            skips.append(0.0)
    timing = accelerator.timing_from_packets(packets, nnz=int(lengths.sum()))
    skips = np.clip(np.asarray(skips) * skip_alpha, 0.0, 1.0)
    core_seconds = np.asarray(timing.core_seconds)
    effective = core_seconds * (1.0 - skips)
    sizes = np.asarray(part_nnz, dtype=np.float64)
    total = sizes.sum()
    mean_nnz = total / max(1, len(sizes))
    return PlacementScore(
        makespan_s=timing.makespan_s,
        effective_s=float(effective.max(initial=0.0)),
        est_skip_fraction=(
            float((skips * sizes).sum() / total) if total else 0.0
        ),
        imbalance=float(sizes.max(initial=0.0) / mean_nnz) if mean_nnz else 1.0,
        packets_per_core=tuple(packets),
        part_nnz=tuple(int(n) for n in part_nnz),
    )


def measure_skip_fraction(collection, probes: np.ndarray) -> float:
    """Measured streaming-kernel skip fraction on a probe block.

    The calibration (and finalist-ranking) ground truth: one real
    streaming sweep over the compiled candidate, skip counters read off
    the run's own :class:`~repro.core.kernels.base.KernelOutput` —
    ``simulate_multicore_batch`` discards them, so the request is built
    directly.
    """
    from repro.core.kernels import KernelRequest, run_kernel

    design = collection.design
    X = np.atleast_2d(design.quantize_query(np.asarray(probes, dtype=np.float64)))
    request = KernelRequest(
        X=X,
        plans=tuple(collection.stream_plans()),
        accumulate_dtype=design.accumulate_dtype,
        local_k=design.local_k,
    )
    return run_kernel(request, "streaming").skip_fraction


def _anneal_boundaries(
    matrix,
    design,
    candidate: TuneCandidate,
    probes,
    probe_scores,
    skip_alpha: float,
    accelerator,
    rng: np.random.Generator,
    iterations: int,
) -> TuneCandidate:
    """Simulated-annealing shifts on partition boundaries (fixed order).

    Moves one interior cut a few rows left/right; accepts improvements
    always and regressions with a decaying temperature.  Deterministic for
    a given rng seed.
    """
    placement = candidate.placement
    best = current = candidate
    n = placement.n_rows
    n_parts = placement.n_partitions
    if n_parts < 2 or n < 2 * n_parts or iterations <= 0:
        return candidate
    t0 = max(current.score.cost, 1e-12) * 0.05
    for it in range(iterations):
        b = current.placement.boundaries.copy()
        i = int(rng.integers(1, n_parts))
        span = max(1, n // (n_parts * 8))
        delta = int(rng.integers(1, span + 1)) * (1 if rng.random() < 0.5 else -1)
        b[i] = int(np.clip(b[i] + delta, b[i - 1], b[i + 1]))
        if b[i] == current.placement.boundaries[i]:
            continue
        moved = current.placement.with_boundaries(b)
        score = score_placement(
            matrix,
            design,
            moved,
            probes=probes,
            probe_scores=probe_scores,
            skip_alpha=skip_alpha,
            accelerator=accelerator,
        )
        temperature = t0 * (1.0 - it / iterations) + 1e-15
        worse_by = score.cost - current.score.cost
        if worse_by <= 0 or rng.random() < np.exp(-worse_by / temperature):
            current = TuneCandidate(
                strategy=f"{candidate.strategy}+anneal",
                placement=moved,
                score=score,
            )
            if current.score.cost < best.score.cost:
                best = current
    return best


def tune_placement(
    matrix,
    design=None,
    n_partitions: "int | None" = None,
    probes: "np.ndarray | None" = None,
    n_probes: int = 32,
    seed: int = 0,
    anneal_iters: int = 64,
    measure: bool = True,
    strategies: "tuple[str, ...]" = PLACEMENT_STRATEGIES,
) -> TuneReport:
    """Search strategies + boundary annealing for the best row placement.

    Parameters
    ----------
    matrix:
        The collection to place (CSRMatrix / SciPy / dense).
    design, n_partitions:
        As for :func:`~repro.core.collection.compile_collection`.
    probes:
        ``(Q, n_cols)`` probe-query block the skip estimator (and the
        measured finalist ranking) evaluates against; omitted, ``n_probes``
        unit queries are sampled deterministically from ``seed``.
    anneal_iters:
        Boundary-shift annealing iterations on the best model candidate
        (0 disables).
    measure:
        Compile each finalist and rank by *measured* streaming skip (the
        cost model alone decides when False — cheaper, less faithful).
    """
    from repro.core.collection import compile_collection, resolve_design
    from repro.core.engine import as_csr_matrix
    from repro.utils.rng import derive_rng, sample_unit_queries

    matrix = as_csr_matrix(matrix)
    design = resolve_design(matrix, design)
    n_parts = design.cores if n_partitions is None else int(n_partitions)
    if probes is None:
        probes = sample_unit_queries(derive_rng(seed), n_probes, matrix.n_cols)
    probes = np.atleast_2d(np.asarray(probes, dtype=np.float64))
    if probes.shape[1] != matrix.n_cols:
        raise ConfigurationError(
            f"probes must have shape (Q, {matrix.n_cols}), got {probes.shape}"
        )
    probe_scores = matrix.to_scipy() @ probes.T  # (n_rows, Q), shared
    accelerator = TopKSpmvAccelerator(design)

    def _score(placement, alpha):
        return score_placement(
            matrix,
            design,
            placement,
            probes=probes,
            probe_scores=probe_scores,
            skip_alpha=alpha,
            accelerator=accelerator,
        )

    candidates = []
    for name in strategies:
        placement = plan_placement(name, matrix, n_parts)
        candidates.append(
            TuneCandidate(
                strategy=name, placement=placement, score=_score(placement, 1.0)
            )
        )

    # Calibrate the skip estimator on the candidate predicting the most
    # skip: one real compile + streaming sweep anchors alpha, then every
    # candidate is re-scored on the calibrated model.
    skip_alpha = 1.0
    if measure:
        anchor = max(candidates, key=lambda c: c.score.est_skip_fraction)
        if anchor.score.est_skip_fraction > 1e-9:
            compiled = compile_collection(
                matrix, design, n_partitions=n_parts, placement=anchor.placement
            )
            measured = measure_skip_fraction(compiled, probes)
            skip_alpha = measured / anchor.score.est_skip_fraction
            candidates = [
                TuneCandidate(c.strategy, c.placement, _score(c.placement, skip_alpha))
                for c in candidates
            ]

    best = min(candidates, key=lambda c: c.score.cost)
    rng = np.random.default_rng(seed)
    annealed = _anneal_boundaries(
        matrix,
        design,
        best,
        probes,
        probe_scores,
        skip_alpha,
        accelerator,
        rng,
        anneal_iters,
    )
    if annealed is not best:
        candidates.append(annealed)

    # Measured finalist ranking: the model's favourite, its annealed
    # variant and the uniform baseline get a real streaming sweep each;
    # the winner minimises measured makespan x (1 - skip).
    if measure:
        finalists = {id(c): c for c in (best, annealed)}
        for c in candidates:
            if c.strategy == "uniform":
                finalists[id(c)] = c
        for c in finalists.values():
            compiled = compile_collection(
                matrix, design, n_partitions=n_parts, placement=c.placement
            )
            c.measured_skip_fraction = measure_skip_fraction(compiled, probes)
            c.measured_effective_s = c.score.makespan_s * (
                1.0 - c.measured_skip_fraction
            )
        winner = min(
            finalists.values(), key=lambda c: c.measured_effective_s
        )
    else:
        winner = min(candidates, key=lambda c: c.score.cost)

    return TuneReport(
        winner=winner,
        candidates=candidates,
        skip_alpha=float(skip_alpha),
        n_probes=int(probes.shape[0]),
        seed=int(seed),
    )
