"""The per-core Top-K scratchpad (Section IV-B, Algorithm 1 stage 4).

Each core keeps the current top ``k`` (row, value) pairs in LUT registers
instead of writing the full output vector back to HBM.  On every finished
row the hardware compares the row's value against the current *worst*
tracked value (an argmin over the k registers) and replaces it when the new
value is greater **or equal** — the ``resagg[j] >= worst`` comparison in
Algorithm 1, which means later rows evict equal-valued earlier ones.

The paper fixes ``k = 8``: larger k lowers the clock (RAW dependency chain
in the argmin), smaller k hurts accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.core.reference import TopKResult
from repro.utils.validation import check_positive_int

__all__ = ["TopKTracker"]


class TopKTracker:
    """A k-entry replace-the-minimum tracker, mirroring the hardware unit."""

    def __init__(self, k: int):
        self.k = check_positive_int(k, "k")
        self._values = np.full(self.k, -np.inf, dtype=np.float64)
        self._indices = np.full(self.k, -1, dtype=np.int64)
        self._inserted = 0

    @property
    def worst_value(self) -> float:
        """Current eviction threshold (−inf while not full)."""
        return float(self._values.min())

    @property
    def count(self) -> int:
        """Number of real entries currently tracked (≤ k)."""
        return min(self._inserted, self.k)

    def insert(self, row: int, value: float) -> bool:
        """Offer a finished row to the tracker; returns True when accepted.

        Mirrors the hardware exactly: a single argmin over the k registers,
        replacement on ``value >= worst``.  NumPy's ``argmin`` picks the
        first minimum, as a priority encoder would.
        """
        slot = int(self._values.argmin())
        if value >= self._values[slot]:
            self._values[slot] = value
            self._indices[slot] = row
            self._inserted += 1
            return True
        return False

    def insert_many(self, rows: np.ndarray, values: np.ndarray) -> int:
        """Offer a batch of finished rows in order; returns the accept count.

        The hardware processes finished rows of one packet through the same
        sequential argmin unit, so order matters and is preserved.  The
        implementation short-circuits two cases that cannot change the
        sequential outcome — it stays bit-identical to a loop of
        :meth:`insert` (the batched-dataflow property suite asserts this):

        * an empty tracker accepts the first ``k`` finite values into slots
          ``0..k-1`` in order (argmin always lands on the first −inf slot);
        * once every slot is finite the eviction threshold never decreases,
          so any value below the threshold *at entry* is rejected no matter
          when it arrives and cannot perturb later slot choices.
        """
        rows = np.asarray(rows)
        values = np.asarray(values, dtype=np.float64)
        n = min(len(rows), len(values))
        accepted = 0
        start = 0
        if self._inserted == 0 and bool((self._indices < 0).all()):
            fill = min(self.k, n)
            head = values[:fill]
            if fill and np.isfinite(head).all():
                self._values[:fill] = head
                self._indices[:fill] = np.asarray(rows[:fill], dtype=np.int64)
                self._inserted += fill
                accepted += fill
                start = fill
        if start < n:
            worst = float(self._values.min())
            if np.isfinite(worst):
                survivors = np.nonzero(values[start:n] >= worst)[0] + start
            else:
                survivors = np.arange(start, n)
            for j in survivors:
                accepted += self.insert(int(rows[j]), float(values[j]))
        return accepted

    def result(self) -> TopKResult:
        """Snapshot the tracked entries, sorted (desc value, asc index).

        Unfilled slots (when fewer than k rows were offered) are dropped.
        """
        mask = self._indices >= 0
        indices = self._indices[mask]
        values = self._values[mask]
        order = np.lexsort((indices, -values))
        return TopKResult(indices=indices[order], values=values[order])

    def reset(self) -> None:
        """Clear the tracker for the next query."""
        self._values.fill(-np.inf)
        self._indices.fill(-1)
        self._inserted = 0
