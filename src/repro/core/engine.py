"""High-level public API: the end-to-end simulated accelerator.

:class:`TopKSpmvEngine` is what a downstream user touches: load an embedding
collection once (partitioning + BS-CSR encoding + URAM feasibility check),
then issue Top-K queries.  Every query runs the *functional* hardware path —
quantised values, packet streams, Algorithm 1 per core, k·c candidate merge —
and returns the result together with the simulated latency, throughput and
power of the modelled board.

Example
-------
>>> import numpy as np
>>> from repro import TopKSpmvEngine, PAPER_DESIGNS
>>> from repro.data.synthetic import synthetic_embeddings
>>> matrix = synthetic_embeddings(n_rows=10_000, n_cols=512, avg_nnz=20, seed=7)
>>> engine = TopKSpmvEngine(matrix, design=PAPER_DESIGNS["20b"])
>>> x = np.abs(np.random.default_rng(0).standard_normal(512))
>>> result = engine.query(x / np.linalg.norm(x), top_k=10)
>>> len(result.topk)
10

Batched queries
---------------
:meth:`TopKSpmvEngine.query_batch` takes a ``(Q, n_cols)`` block and runs the
vectorised multi-query dataflow (one broadcast multiply + reduction sweep per
partition, shared across the block) instead of re-walking the packet streams
per query.  Results are bit-identical to looping :meth:`~TopKSpmvEngine.query`
but the software hot path no longer scales with the per-query stream walk:

>>> X = np.abs(np.random.default_rng(1).standard_normal((64, 512)))
>>> X /= np.linalg.norm(X, axis=1, keepdims=True)
>>> batch = engine.query_batch(X, top_k=10)
>>> len(batch), len(batch.dataflow)        # per-query topk and stats
(64, 64)
>>> batch.queries_per_second > 0
True
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.approx import merge_topk_candidates
from repro.core.dataflow import (
    DataflowStats,
    StreamPlan,
    simulate_multicore,
    simulate_multicore_batch,
)
from repro.core.reference import TopKResult, exact_topk_spmv
from repro.core.segments import MutableEngineMixin, SegmentedCollection
from repro.errors import ConfigurationError
from repro.formats.bscsr import BSCSRMatrix
from repro.formats.csr import CSRMatrix
from repro.hw.calibration import CALIBRATION, CalibrationConstants
from repro.hw.design import AcceleratorDesign
from repro.hw.hbm import ALVEO_U280_HBM, HBMConfig
from repro.hw.multicore import AcceleratorTiming, TopKSpmvAccelerator
from repro.hw.power import estimate_fpga_power_w
from repro.hw.uram import ALVEO_U280_URAM, URAMSpec, check_vector_fits
from repro.utils.validation import check_positive_int

__all__ = [
    "EngineResult",
    "BatchResult",
    "TopKSpmvEngine",
    "as_csr_matrix",
    "check_query_vector",
    "check_query_block",
]


def check_query_vector(x: np.ndarray, n_cols: int) -> np.ndarray:
    """Validate one dense query against the collection width."""
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (n_cols,):
        raise ConfigurationError(
            f"query must have shape ({n_cols},), got {x.shape}"
        )
    return x


def check_query_block(queries: np.ndarray, n_cols: int) -> np.ndarray:
    """Validate a ``(Q, n_cols)`` query block (1-D input is promoted)."""
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    if queries.ndim != 2 or queries.shape[1] != n_cols:
        raise ConfigurationError(
            f"queries must have shape (Q, {n_cols}), got {queries.shape}"
        )
    return queries


def as_csr_matrix(matrix) -> CSRMatrix:
    """Coerce a CSRMatrix / SciPy sparse / dense 2-D array into CSRMatrix."""
    if isinstance(matrix, CSRMatrix):
        return matrix
    if hasattr(matrix, "tocsr"):
        return CSRMatrix.from_scipy(matrix)
    dense = np.asarray(matrix)
    if dense.ndim == 2:
        return CSRMatrix.from_dense(dense)
    raise ConfigurationError(
        f"matrix must be CSRMatrix, scipy sparse or dense 2-D array, "
        f"got {type(matrix).__name__}"
    )


@dataclass(frozen=True)
class BatchResult:
    """Result of a back-to-back batch of queries on one board.

    ``topk`` and ``dataflow`` are per-query (index-aligned with the input
    block); the timing/energy fields describe the whole batch.
    """

    topk: "list[TopKResult]"
    seconds: float
    queries_per_second: float
    energy_j: float
    dataflow: "tuple[DataflowStats, ...]" = ()

    def __len__(self) -> int:
        return len(self.topk)

    @property
    def dataflow_totals(self) -> DataflowStats:
        """Counters merged over every query of the batch."""
        totals = DataflowStats()
        for stats in self.dataflow:
            totals = totals.merge(stats)
        return totals


@dataclass(frozen=True)
class EngineResult:
    """Everything one simulated query produces."""

    topk: TopKResult
    timing: AcceleratorTiming
    dataflow: DataflowStats
    power_w: float

    @property
    def latency_s(self) -> float:
        """Simulated end-to-end query latency in seconds."""
        return self.timing.total_seconds

    @property
    def throughput_nnz_per_s(self) -> float:
        """Simulated non-zeros per second."""
        return self.timing.throughput_nnz_per_s

    @property
    def energy_j(self) -> float:
        """Simulated board energy for the query."""
        return self.power_w * self.latency_s


class TopKSpmvEngine(MutableEngineMixin):
    """Simulated multi-core Top-K SpMV accelerator over a loaded collection.

    Mutation methods (``ingest``/``update``/``delete``/``seal``/``compact``)
    come from :class:`~repro.core.segments.MutableEngineMixin` and require
    a segmented collection.
    """

    def __init__(
        self,
        matrix,
        design: AcceleratorDesign | None = None,
        hbm: HBMConfig = ALVEO_U280_HBM,
        uram: URAMSpec = ALVEO_U280_URAM,
        constants: CalibrationConstants = CALIBRATION,
        kernel: "str | None" = None,
        kernel_workers: "int | str | None" = None,
        kernel_executor: "str | None" = None,
    ):
        """Attach a board to a collection, compiling it if necessary.

        Parameters
        ----------
        matrix:
            Either an already-compiled
            :class:`~repro.core.collection.CompiledCollection` (its encoded
            streams and plans are reused verbatim — nothing is rebuilt), or
            the raw sparse embedding collection
            (:class:`repro.formats.csr.CSRMatrix`, SciPy sparse, dense
            array), which is run through
            :func:`~repro.core.collection.compile_collection` first.
        design:
            Accelerator design point; defaults to the paper's best (20-bit
            fixed point, 32 cores).  If the matrix is wider than the
            design's ``max_columns``, the layout is re-solved for the real
            width (fewer lanes per packet).  Must be omitted (or equal)
            when a compiled collection is passed — the artifact already
            fixes the design it was quantised with.
        hbm, uram, constants:
            Board models; defaults model the Alveo U280.
        kernel:
            Batch-query kernel backend name (see :mod:`repro.core.kernels`);
            ``None`` defers to ``$REPRO_KERNEL`` or the registry default.
            Every backend returns bit-identical results — this is a pure
            software-performance knob.
        kernel_workers:
            Partition-parallel worker count for the batch path
            (``"auto"``/``0`` = all cores); ``None`` defers to
            ``$REPRO_KERNEL_WORKERS`` or 1.  Bit-neutral.
        kernel_executor:
            Partition executor for the batch path, ``"thread"`` (default)
            or ``"process"`` (spawned workers over shared-memory plan
            buffers); ``None`` defers to ``$REPRO_KERNEL_EXECUTOR``.
            Bit-neutral.
        """
        from repro.core.collection import (
            CompiledCollection,
            check_design_compatible,
            compile_collection,
            resolve_design,
        )

        collection = None
        self._segmented = isinstance(matrix, SegmentedCollection)
        if self._segmented:
            if design is not None and design != matrix.design:
                raise ConfigurationError(
                    f"collection was compiled for {matrix.design.name!r}; "
                    f"cannot serve it as {design.name!r} — recompile instead"
                )
            collection = matrix
            design = matrix.design
            n_cols = matrix.n_cols
        elif isinstance(matrix, CompiledCollection):
            check_design_compatible(matrix, design, "serve")
            collection = matrix
            csr = matrix.matrix
            design = matrix.design
            n_cols = csr.n_cols
        else:
            csr = as_csr_matrix(matrix)
            design = resolve_design(csr, design)
            n_cols = csr.n_cols
        self.constants = constants
        # Validate the board can hold the query vector *before* paying for
        # the (potentially long) build.
        check_vector_fits(
            vector_size=max(1, n_cols),
            cores=design.cores,
            lanes=design.layout.lanes,
            x_bits=32,
            spec=uram,
        )
        self.collection = (
            collection if collection is not None else compile_collection(csr, design)
        )
        self.kernel = kernel
        self.kernel_workers = kernel_workers
        self.kernel_executor = kernel_executor
        self.accelerator = TopKSpmvAccelerator(design, hbm, constants)
        # Timing depends only on the stream shape, not the query: cache it.
        # A segmented collection mutates, so its timing is derived lazily
        # per generation (see the `timing` property) instead.
        self._timing = (
            None if self._segmented
            else self.accelerator.timing_from_matrix(self.encoded)
        )
        self._timing_generation = None
        self._power_w = estimate_fpga_power_w(design, constants)

    @classmethod
    def from_collection(
        cls,
        collection,
        hbm: HBMConfig = ALVEO_U280_HBM,
        uram: URAMSpec = ALVEO_U280_URAM,
        constants: CalibrationConstants = CALIBRATION,
        kernel: "str | None" = None,
        kernel_workers: "int | str | None" = None,
        kernel_executor: "str | None" = None,
    ) -> "TopKSpmvEngine":
        """Serve a pre-compiled (or loaded) collection on a simulated board."""
        return cls(
            collection,
            hbm=hbm,
            uram=uram,
            constants=constants,
            kernel=kernel,
            kernel_workers=kernel_workers,
            kernel_executor=kernel_executor,
        )

    # The query-independent state lives on the compiled artifact; the engine
    # only adds the board (timing + power) on top.
    @property
    def matrix(self) -> CSRMatrix:
        """The original float64 collection (live logical rows if segmented)."""
        return self.collection.matrix

    @property
    def design(self) -> AcceleratorDesign:
        """The design the collection was compiled for."""
        return self.collection.design

    @property
    def segmented(self) -> bool:
        """Whether this engine serves a mutable segmented collection."""
        return self._segmented

    @property
    def encoded(self) -> BSCSRMatrix:
        """The partitioned BS-CSR streams (frozen collections only)."""
        if self._segmented:
            raise ConfigurationError(
                "a segmented collection has no single encoded matrix; "
                "inspect collection.segments instead"
            )
        return self.collection.encoded


    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def query(self, x: np.ndarray, top_k: int) -> EngineResult:
        """Run one approximate Top-K query through the simulated hardware.

        On a segmented collection the result is the *global* Top-K fold of
        the multi-segment driver (no ``k·c`` candidate cap); indices are
        positions in the live logical matrix — translate to stable row keys
        with ``engine.collection.keys_for(result.topk.indices)``.
        """
        top_k = check_positive_int(top_k, "top_k")
        if self._segmented:
            x = self._check_query(x)
            out = self._run_segmented(x[None, :], top_k)
            return EngineResult(
                topk=out.results[0],
                timing=self.timing,
                dataflow=out.stats_per_query()[0],
                power_w=self._power_w,
            )
        if top_k > self.design.local_k * self.design.cores:
            raise ConfigurationError(
                f"top_k = {top_k} exceeds k*c = "
                f"{self.design.local_k * self.design.cores} candidates; "
                "increase local_k or cores"
            )
        x = self._check_query(x)
        x_uram = self.design.quantize_query(x)
        candidates, stats = simulate_multicore(
            self.encoded,
            x_uram,
            local_k=self.design.local_k,
            accumulate_dtype=self.design.accumulate_dtype,
            row_map=self.collection.row_map,
        )
        topk = merge_topk_candidates(candidates, top_k)
        return EngineResult(
            topk=topk, timing=self._timing, dataflow=stats, power_w=self._power_w
        )

    def query_candidates(self, x: np.ndarray) -> tuple[list[TopKResult], DataflowStats]:
        """Run the cores once and return the raw k·c candidate lists.

        Useful for sweeping K without re-streaming the matrix: any
        ``top_k <= k*c`` can be merged from the same candidates with
        :func:`repro.core.approx.merge_topk_candidates` (what the host does).
        """
        self._frozen_only("query_candidates")
        x = self._check_query(x)
        x_uram = self.design.quantize_query(x)
        return simulate_multicore(
            self.encoded,
            x_uram,
            local_k=self.design.local_k,
            accumulate_dtype=self.design.accumulate_dtype,
            row_map=self.collection.row_map,
        )

    def query_exact(self, x: np.ndarray, top_k: int) -> TopKResult:
        """Golden float64 reference on the *original* (unquantised) matrix."""
        x = self._check_query(x)
        return exact_topk_spmv(self.matrix, x, top_k)

    def query_candidates_batch(
        self, queries: np.ndarray
    ) -> tuple[list[list[TopKResult]], list[DataflowStats]]:
        """Run the cores once against a query block; raw candidates per query.

        The block is validated and quantised once; every partition stream is
        walked once for the whole block (see
        :func:`repro.core.dataflow.simulate_multicore_batch`).  ``result[q]``
        holds query ``q``'s per-core k-candidate lists with global row ids.
        """
        from repro.core.kernels import resolve_kernel_name

        self._frozen_only("query_candidates_batch")
        queries = self._check_query_block(queries)
        x_uram = self.design.quantize_query(queries)
        # Only lower/pass the contraction operand when the resolved backend
        # can actually use it (see CompiledCollection.wants_contraction_
        # operand for the policy) — gather/streaming engines and gateless
        # auto never pay the operand's O(nnz) build or memory cost.
        operand = (
            self.collection.contraction_operand()
            if self.collection.wants_contraction_operand(
                resolve_kernel_name(self.kernel)
            )
            else None
        )
        return simulate_multicore_batch(
            self.encoded,
            x_uram,
            local_k=self.design.local_k,
            accumulate_dtype=self.design.accumulate_dtype,
            plans=self.stream_plans(),
            kernel=self.kernel,
            n_workers=self.kernel_workers,
            operand=operand,
            executor=self.kernel_executor,
            row_map=self.collection.row_map,
        )

    def query_batch(self, queries: np.ndarray, top_k: int) -> "BatchResult":
        """Serve a batch of queries back-to-back on the simulated board.

        The whole ``(Q, n_cols)`` block is validated and quantised once and
        runs through the vectorised multi-query dataflow — per query the
        top-k (and dataflow counters) are bit-identical to
        :meth:`query`, but the software hot path walks each partition
        stream once per *batch* instead of once per query.

        The modelled hardware still streams the matrix once per query
        (queries are independent scans); the batch latency is therefore
        ``Q x makespan`` plus a single host invocation — consecutive scans
        overlap the host round-trip, which is how a real deployment would
        drive the board.
        """
        top_k = check_positive_int(top_k, "top_k")
        queries = self._check_query_block(queries)
        if self._segmented:
            out = self._run_segmented(queries, top_k)
            results = out.results
            stats = out.stats_per_query()
        else:
            if top_k > self.design.local_k * self.design.cores:
                raise ConfigurationError(
                    f"top_k = {top_k} exceeds k*c = "
                    f"{self.design.local_k * self.design.cores} candidates; "
                    "increase local_k or cores"
                )
            candidates, stats = self.query_candidates_batch(queries)
            results = [merge_topk_candidates(c, top_k) for c in candidates]
        batch_seconds = (
            len(queries) * self.timing.makespan_s + self.constants.host_overhead_s
        )
        return BatchResult(
            topk=results,
            seconds=batch_seconds,
            queries_per_second=len(queries) / batch_seconds,
            energy_j=self._power_w * batch_seconds,
            dataflow=tuple(stats),
        )

    def _run_segmented(self, queries: np.ndarray, top_k: int):
        """The multi-segment sweep (quantise, drive, return the raw output)."""
        from repro.core.kernels import run_segmented

        return run_segmented(
            self.collection,
            self.design.quantize_query(queries),
            top_k,
            kernel=self.kernel,
        )

    def _frozen_only(self, action: str) -> None:
        if self._segmented:
            raise ConfigurationError(
                f"{action} exposes the per-core candidate sweep, which only "
                "exists for frozen collections; a segmented collection folds "
                "a global Top-K instead (use query/query_batch)"
            )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def timing(self) -> AcceleratorTiming:
        """Query-independent timing of one full scan.

        For a segmented collection the board streams every segment's
        partition ``p`` back to back on core ``p`` (the delta snapshot
        rides on core 0), so per-core packet counts sum across segments;
        tombstoned rows still stream until a compaction drops them — the
        honest LSM read-amplification cost, and exactly what ``compact()``
        recovers.  Recomputed when the collection's generation moves.
        """
        if not self._segmented:
            return self._timing
        generation = self.collection.generation
        if self._timing is None or self._timing_generation != generation:
            self._timing = self.accelerator.timing_from_packets(
                *_segmented_packets(self.collection)
            )
            self._timing_generation = generation
        return self._timing

    @property
    def power_w(self) -> float:
        """Modelled board power of the configured design."""
        return self._power_w

    def describe(self) -> str:
        """Multi-line summary of the loaded collection and design."""
        if self._segmented:
            lines = [
                self.collection.describe(),
                f"simulated query latency: "
                f"{self.timing.total_seconds * 1e3:.3f} ms, "
                f"power: {self.power_w:.1f} W",
            ]
            return "\n".join(lines)
        lines = [
            self.design.describe(),
            f"matrix: {self.matrix.n_rows} rows x {self.matrix.n_cols} cols, "
            f"{self.matrix.nnz} non-zeros",
            f"BS-CSR: {self.encoded.total_packets} packets, "
            f"{self.encoded.total_bytes / 1e6:.2f} MB across "
            f"{self.encoded.n_partitions} channels",
            f"simulated query latency: {self.timing.total_seconds * 1e3:.3f} ms, "
            f"power: {self.power_w:.1f} W",
        ]
        return "\n".join(lines)

    def stream_plans(self) -> "list[StreamPlan]":
        """Per-partition batch plans (the collection's shared lazy cache)."""
        self._frozen_only("stream_plans")
        return self.collection.stream_plans()

    def _check_query(self, x: np.ndarray) -> np.ndarray:
        return check_query_vector(x, self.collection.n_cols)

    def _check_query_block(self, queries: np.ndarray) -> np.ndarray:
        return check_query_block(queries, self.collection.n_cols)


def _segmented_packets(collection) -> "tuple[list[int], int]":
    """Per-core packet counts + total nnz of a segmented collection's scan.

    Core ``p`` streams partition ``p`` of every segment back to back; the
    compiled delta snapshot (1 partition) streams on core 0.  Tombstoned
    rows are still encoded in their segments, so they are honestly counted
    until a compaction rewrites them away.
    """
    n_parts = max(
        (s.artifact.n_partitions for s in collection.segments), default=1
    )
    packets = [0] * max(1, n_parts)
    nnz = 0
    for segment in collection.segments:
        for p, stream in enumerate(segment.artifact.encoded.streams):
            packets[p] += stream.n_packets
        nnz += segment.artifact.nnz
    delta = collection.compiled_delta()
    if delta is not None:
        packets[0] += delta.encoded.total_packets
        nnz += delta.nnz
    return packets, nnz
