"""Exact Top-K SpMV — the golden reference.

Top-K SpMV computes ``y = A @ x`` and returns the indices and values of the
``K`` largest entries of ``y`` (Figure 1 of the paper).  When ``A`` holds
L2-normalised embeddings and ``x`` is an L2-normalised query, these are the
``K`` most cosine-similar embeddings.

Ordering convention used across the whole library: descending value, ties
broken by ascending row index.  This makes every comparison in the test
suite deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.formats.csr import CSRMatrix
from repro.utils.validation import check_positive_int

__all__ = ["TopKResult", "topk_from_scores", "exact_topk_spmv"]


@dataclass(frozen=True)
class TopKResult:
    """Result of a Top-K query: parallel arrays sorted by descending value.

    Attributes
    ----------
    indices:
        Row ids of the retrieved embeddings, best first.
    values:
        The corresponding dot products (similarity scores).
    """

    indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "indices", np.ascontiguousarray(self.indices, dtype=np.int64))
        object.__setattr__(self, "values", np.ascontiguousarray(self.values, dtype=np.float64))
        if self.indices.shape != self.values.shape or self.indices.ndim != 1:
            raise ConfigurationError(
                f"indices {self.indices.shape} and values {self.values.shape} "
                "must be equal-length 1-D arrays"
            )

    @property
    def k(self) -> int:
        """Number of retrieved entries."""
        return len(self.indices)

    def __len__(self) -> int:
        return len(self.indices)

    def __iter__(self):
        return iter(zip(self.indices.tolist(), self.values.tolist()))

    def head(self, k: int) -> "TopKResult":
        """The best ``k`` entries (already sorted)."""
        return TopKResult(indices=self.indices[:k], values=self.values[:k])


def topk_from_scores(scores: np.ndarray, k: int) -> TopKResult:
    """Select the top ``k`` entries of a dense score vector.

    Uses ``argpartition`` for O(N) selection and sorts only the selected
    entries.  Ties are broken by ascending index (deterministic).
    """
    k = check_positive_int(k, "k")
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1:
        raise ConfigurationError(f"scores must be 1-D, got shape {scores.shape}")
    n = len(scores)
    k = min(k, n)
    if k == 0:
        return TopKResult(indices=np.empty(0, dtype=np.int64), values=np.empty(0))
    if k == n:
        candidates = np.arange(n)
    else:
        partitioned = np.argpartition(scores, n - k)
        candidates = partitioned[n - k :]
        # argpartition picks arbitrarily among values tied at the k-th
        # largest; enforce the ascending-index tie-break by swapping in any
        # lower-index rows that share the boundary value.
        boundary = scores[candidates].min()
        excluded = partitioned[: n - k]
        tied_out = excluded[scores[excluded] == boundary]
        if len(tied_out):
            tied_in = candidates[scores[candidates] == boundary]
            keep = candidates[scores[candidates] > boundary]
            tied = np.sort(np.concatenate([tied_in, tied_out]))[: len(tied_in)]
            candidates = np.concatenate([keep, tied])
    # Sort candidates: descending value, ascending index on ties.
    order = np.lexsort((candidates, -scores[candidates]))
    chosen = candidates[order]
    return TopKResult(indices=chosen, values=scores[chosen])


def exact_topk_spmv(matrix, x: np.ndarray, k: int) -> TopKResult:
    """Exact Top-K SpMV in float64: the paper's correctness baseline.

    ``matrix`` may be a :class:`repro.formats.csr.CSRMatrix`, a SciPy sparse
    matrix, or a dense 2-D NumPy array.
    """
    x = np.asarray(x, dtype=np.float64)
    if isinstance(matrix, CSRMatrix):
        scores = matrix.matvec(x)
    elif hasattr(matrix, "tocsr"):  # SciPy sparse
        scores = np.asarray(matrix.tocsr() @ x).ravel()
    else:
        dense = np.asarray(matrix, dtype=np.float64)
        if dense.ndim != 2:
            raise ConfigurationError(
                f"matrix must be CSRMatrix, scipy sparse or 2-D array, got shape {dense.shape}"
            )
        if dense.shape[1] != len(x):
            raise ConfigurationError(
                f"matrix has {dense.shape[1]} columns but x has {len(x)} entries"
            )
        scores = dense @ x
    return topk_from_scores(scores, k)
