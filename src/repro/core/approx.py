"""The partitioned Top-K approximation (Section III-A, Figure 2).

Instead of the exact global Top-K, each of the ``c`` independent cores
computes the top ``k < K`` rows of its own partition; the union of the
``k*c`` candidates (with ``k*c >= K``) is re-ranked and truncated to ``K``.
Errors occur only when some partition holds *more than k* of the true Top-K
rows — increasingly unlikely as ``c`` grows (quantified in
:mod:`repro.core.precision_model`).  The best-ranked rows are never lost:
the global top-1..top-k always survive partitioning.
"""

from __future__ import annotations

import numpy as np

from repro.core.partition import partition_rows
from repro.core.reference import TopKResult, exact_topk_spmv, topk_from_scores
from repro.errors import ConfigurationError
from repro.formats.csr import CSRMatrix
from repro.utils.validation import check_positive_int

__all__ = [
    "approximate_topk_spmv",
    "merge_topk_candidates",
    "default_local_k",
]

#: The paper's per-core k (Section IV-B): fixed at 8 by the argmin RAW chain.
PAPER_LOCAL_K = 8


def default_local_k(top_k: int, n_partitions: int) -> int:
    """Smallest per-partition k satisfying ``k * c >= K`` (at least 1)."""
    top_k = check_positive_int(top_k, "top_k")
    n_partitions = check_positive_int(n_partitions, "n_partitions")
    return max(1, -(-top_k // n_partitions))


def merge_topk_candidates(candidates: list[TopKResult], top_k: int) -> TopKResult:
    """Re-rank the union of per-partition candidates and keep the best ``top_k``.

    Candidate indices must already be global row ids.
    """
    top_k = check_positive_int(top_k, "top_k")
    if not candidates:
        return TopKResult(indices=np.empty(0, dtype=np.int64), values=np.empty(0))
    indices = np.concatenate([c.indices for c in candidates])
    values = np.concatenate([c.values for c in candidates])
    keep = min(top_k, len(indices))
    if keep == 0:
        return TopKResult(indices=np.empty(0, dtype=np.int64), values=np.empty(0))
    order = np.lexsort((indices, -values))[:keep]
    return TopKResult(indices=indices[order], values=values[order])


def approximate_topk_spmv(
    matrix: CSRMatrix,
    x: np.ndarray,
    top_k: int,
    n_partitions: int,
    local_k: int | None = None,
) -> TopKResult:
    """Partitioned approximate Top-K SpMV (the algorithmic path).

    This is the paper's approximation scheme evaluated with exact float64
    arithmetic per partition — it isolates the *partitioning* error from the
    *quantisation* error (the full hardware path lives in
    :mod:`repro.core.dataflow`).

    Parameters
    ----------
    matrix:
        The embedding collection (CSR).
    x:
        Dense query vector.
    top_k:
        Global ``K`` to retrieve.
    n_partitions:
        Number of independent partitions ``c``.
    local_k:
        Per-partition ``k``; defaults to ``ceil(K / c)``.  The paper uses
        a fixed k = 8 with c = 32 for K up to 100 (see
        :data:`PAPER_LOCAL_K`); ``k * c >= K`` is enforced.
    """
    top_k = check_positive_int(top_k, "top_k")
    n_partitions = check_positive_int(n_partitions, "n_partitions")
    if local_k is None:
        local_k = default_local_k(top_k, n_partitions)
    else:
        local_k = check_positive_int(local_k, "local_k")
    if local_k * n_partitions < top_k:
        raise ConfigurationError(
            f"k*c = {local_k}*{n_partitions} = {local_k * n_partitions} cannot "
            f"cover K = {top_k}; increase local_k or n_partitions"
        )
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (matrix.n_cols,):
        raise ConfigurationError(
            f"x must have shape ({matrix.n_cols},), got {x.shape}"
        )

    scores = matrix.matvec(x)
    candidates = []
    for part in partition_rows(matrix.n_rows, n_partitions):
        if part.n_rows == 0:
            continue
        local = topk_from_scores(scores[part.start : part.stop], local_k)
        candidates.append(
            TopKResult(indices=local.indices + part.start, values=local.values)
        )
    return merge_topk_candidates(candidates, top_k)


def exact_equivalent(matrix: CSRMatrix, x: np.ndarray, top_k: int) -> TopKResult:
    """Convenience wrapper over the golden reference (same signature family)."""
    return exact_topk_spmv(matrix, x, top_k)
