"""Row partitioning of the embedding collection across cores (Section III-A).

The matrix is split into ``c`` contiguous row blocks of (as close as possible
to) ``N/c`` rows each; partition ``i`` is stored in HBM channel ``i`` and
processed by FPGA core ``i``.  Balanced contiguous blocks keep every core's
packet count — and therefore the makespan — even.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.formats.csr import CSRMatrix
from repro.utils.validation import check_non_negative_int, check_positive_int

__all__ = ["RowPartition", "partition_rows", "partition_matrix"]


@dataclass(frozen=True)
class RowPartition:
    """A contiguous block of rows ``[start, stop)`` owned by one core."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ConfigurationError(
                f"invalid partition bounds [{self.start}, {self.stop})"
            )

    @property
    def n_rows(self) -> int:
        """Number of rows in the partition."""
        return self.stop - self.start

    def to_global(self, local_row: int) -> int:
        """Map a partition-local row id back to a global row id."""
        if not 0 <= local_row < self.n_rows:
            raise ConfigurationError(
                f"local row {local_row} out of range [0, {self.n_rows})"
            )
        return self.start + local_row


def partition_rows(n_rows: int, n_partitions: int) -> list[RowPartition]:
    """Split ``n_rows`` into ``n_partitions`` balanced contiguous blocks.

    The first ``n_rows % n_partitions`` blocks get one extra row, so block
    sizes differ by at most one.  ``n_partitions`` may exceed ``n_rows``;
    surplus blocks are empty (their cores finish instantly).
    """
    n_rows = check_non_negative_int(n_rows, "n_rows")
    n_partitions = check_positive_int(n_partitions, "n_partitions")
    base, extra = divmod(n_rows, n_partitions)
    partitions = []
    start = 0
    for i in range(n_partitions):
        size = base + (1 if i < extra else 0)
        partitions.append(RowPartition(start=start, stop=start + size))
        start += size
    return partitions


def partition_matrix(matrix: CSRMatrix, n_partitions: int) -> list[CSRMatrix]:
    """Slice a CSR matrix into balanced row partitions."""
    return [
        matrix.row_slice(p.start, p.stop)
        for p in partition_rows(matrix.n_rows, n_partitions)
    ]
