"""Segmented mutable collections: LSM-style incremental ingest + compaction.

:class:`~repro.core.collection.CompiledCollection` is compiled once and
frozen — the right shape for the paper's one-shot preprocessing, the wrong
shape for a serving system where embedding rows arrive, change and get
deleted continuously.  This module splits the collection layer the way an
LSM tree splits a sorted store:

* a :class:`Segment` is one *immutable* compiled artifact (a full BS-CSR
  ``CompiledCollection`` with its own digest, stream plans and optional
  contraction operand) plus the two bits of mutable bookkeeping a frozen
  artifact cannot carry: the stable **row keys** of its rows and a
  **tombstone mask** marking rows deleted (or superseded) since sealing;
* a :class:`SegmentedCollection` is an ordered list of segments plus a
  mutable in-memory **delta buffer** receiving appends/updates/deletes.
  The delta is sealed into a new segment when it reaches ``seal_rows`` live
  rows, and :meth:`~SegmentedCollection.compact` rewrites segment runs into
  one, dropping tombstoned rows.

Row identity
------------
Every ingested row gets a monotonically increasing integer **key**, stable
across seal and compaction.  Queries run against the *live logical matrix*:
the live rows of every segment in order, then the live delta rows — results
carry positions in that ordering (what a fresh ``compile_collection`` of
the same matrix would use), and :meth:`SegmentedCollection.live_keys` /
:meth:`SegmentedCollection.keys_for` translate positions back to stable
keys.  An *update* tombstones the key's current row and appends the new
version to the delta, so an updated row moves to the end of the ordering.

Equivalence guarantee
---------------------
After any sequence of ingest/update/delete/seal/compact operations, query
results through the multi-segment driver
(:func:`repro.core.kernels.segmented.run_segmented`) are bit-identical to a
fresh ``compile_collection`` of the equivalent final matrix, for every
kernel backend and codec — see that module for the argument, and
``tests/property/test_prop_segments.py`` for the lock.

Persistence
-----------
:meth:`SegmentedCollection.save` writes a *manifest directory* (see
:func:`repro.formats.io.save_manifest`): one ``segment-<digest16>.npz``
artifact per segment — reused verbatim when a segment with the same digest
was already saved, so compaction and delta churn never rewrite unchanged
segments — plus a ``state.npz`` artifact (keys, tombstones, delta rows) and
the ``MANIFEST.json`` carrying the collection *generation*.
:meth:`SegmentedCollection.load` also accepts a plain PR-2 collection
``.npz``, adopting it verbatim as a pristine one-segment collection (the
artifact keeps its digest and aux buffers) — no migration needed.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.core.collection import (
    COLLECTION_KIND,
    CompiledCollection,
    compile_collection,
    resolve_design,
)
from repro.errors import ConfigurationError, FormatError
from repro.formats.csr import CSRMatrix
from repro.formats.io import load_artifact, load_manifest, save_artifact, save_manifest
from repro.hw.design import AcceleratorDesign
from repro.utils.validation import check_positive_int

__all__ = [
    "Segment",
    "SegmentedCollection",
    "MutableEngineMixin",
    "SEGMENT_MANIFEST_KIND",
    "SEGMENT_STATE_KIND",
    "DEFAULT_SEAL_ROWS",
]

#: Manifest ``kind`` of a persisted segmented collection.
SEGMENT_MANIFEST_KIND = "segmented-collection"

#: Artifact ``kind`` of the mutable-state member (keys, tombstones, delta).
SEGMENT_STATE_KIND = "segmented-state"

#: Default delta-buffer seal threshold (live rows).
DEFAULT_SEAL_ROWS = 4096

#: Delta "segment index" in the key-location map.
_DELTA = -1

#: Minimum rows per partition stream when sealing or merging a segment: a
#: small segment spreads over proportionally fewer HBM channels, so its
#: compile cost scales with its size instead of paying ``design.cores``
#: near-empty encoder calls.  Partition count never affects result bits
#: (the driver folds rows in order regardless), only timing balance.
_MIN_SEGMENT_ROWS_PER_PARTITION = 256


@dataclass
class Segment:
    """One immutable compiled artifact inside a segmented collection.

    ``artifact`` is a standard :class:`CompiledCollection`; ``keys`` are the
    stable row keys of its rows (artifact row ``i`` is key ``keys[i]``) and
    ``live`` is the tombstone mask (``False`` = deleted or superseded).
    The artifact is never modified — deletes only flip mask bits, and the
    dead rows disappear physically at the next :meth:`SegmentedCollection.
    compact`.
    """

    artifact: CompiledCollection
    keys: np.ndarray
    live: np.ndarray
    _live_cum: "np.ndarray | None" = field(default=None, repr=False)
    _n_live: "int | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.keys = np.ascontiguousarray(self.keys, dtype=np.int64)
        self.live = np.ascontiguousarray(self.live, dtype=bool)
        if len(self.keys) != self.artifact.n_rows or len(self.live) != self.artifact.n_rows:
            raise ConfigurationError(
                f"segment bookkeeping covers {len(self.keys)} keys / "
                f"{len(self.live)} mask bits for {self.artifact.n_rows} rows"
            )

    @property
    def n_rows(self) -> int:
        """Physical rows in the artifact (tombstoned included)."""
        return self.artifact.n_rows

    @property
    def n_live(self) -> int:
        """Rows still visible to queries."""
        if self._n_live is None:
            self._n_live = int(self.live.sum())
        return self._n_live

    @property
    def all_live(self) -> bool:
        """True when the segment carries no tombstones."""
        return self.n_live == self.n_rows

    @property
    def digest(self) -> str:
        """The underlying artifact's content digest."""
        return self.artifact.digest

    def live_cumsum(self) -> np.ndarray:
        """``live_cumsum()[r]`` = live rows strictly before row ``r`` (len n_rows+1).

        Cached per tombstone state; this is what maps a physical row to its
        position in the live logical matrix.
        """
        if self._live_cum is None:
            self._live_cum = np.concatenate(
                [[0], np.cumsum(self.live, dtype=np.int64)]
            )
        return self._live_cum

    def tombstone(self, row: int) -> None:
        """Mark one physical row dead (idempotence is the caller's job)."""
        self.live[row] = False
        self._live_cum = None
        self._n_live = None


class _DeltaBuffer:
    """The mutable in-memory tail of a segmented collection.

    Rows arrive as whole CSR *blocks* (one per ingest call, one-row blocks
    for updates) so an ingest is O(1) bookkeeping plus the block handle —
    no per-row Python loop, which is what keeps incremental ingest an
    order of magnitude ahead of a full recompile.  Keys and tombstones are
    tracked per row in arrival order; every query-facing consumer reads
    the buffer through the collection's lazily compiled snapshot
    (:meth:`SegmentedCollection.compiled_delta`), never directly.
    """

    def __init__(self, n_cols: int):
        self.n_cols = int(n_cols)
        self.blocks: "list[CSRMatrix]" = []
        self.keys: "list[int]" = []
        self.live: "list[bool]" = []
        self.n_live = 0

    def __len__(self) -> int:
        return len(self.keys)

    def append_block(self, block: CSRMatrix, keys: np.ndarray) -> int:
        """Add one live CSR block; returns its first buffer position."""
        if block.n_cols != self.n_cols:
            raise ConfigurationError(
                f"ingested rows have {block.n_cols} columns, collection "
                f"holds {self.n_cols}"
            )
        if block.n_rows != len(keys):
            raise ConfigurationError(
                f"{len(keys)} keys supplied for {block.n_rows} rows"
            )
        first = len(self.keys)
        self.blocks.append(block)
        self.keys.extend(int(k) for k in keys)
        self.live.extend([True] * block.n_rows)
        self.n_live += block.n_rows
        return first

    def tombstone(self, pos: int) -> None:
        self.live[pos] = False
        self.n_live -= 1

    def live_rows(self) -> "tuple[CSRMatrix, np.ndarray]":
        """The live buffered rows, arrival order, as (CSRMatrix, keys)."""
        if not self.blocks:
            return _empty_csr(self.n_cols), np.empty(0, dtype=np.int64)
        import scipy.sparse as sp

        stacked = (
            sp.vstack([b.to_scipy() for b in self.blocks], format="csr")
            if len(self.blocks) > 1
            else self.blocks[0].to_scipy()
        )
        live = np.array(self.live, dtype=bool)
        if not live.all():
            stacked = stacked[np.nonzero(live)[0]]
        csr = CSRMatrix(
            indptr=stacked.indptr,
            indices=stacked.indices,
            data=stacked.data,
            n_cols=self.n_cols,
        )
        return csr, np.array(self.keys, dtype=np.int64)[live]

    def clear(self) -> None:
        self.blocks = []
        self.keys = []
        self.live = []
        self.n_live = 0


def _block_token(block: CSRMatrix) -> str:
    """Short content hash of one ingested/updated CSR block (see state_token)."""
    sha = hashlib.sha256()
    sha.update(block.indptr.tobytes())
    sha.update(block.indices.tobytes())
    sha.update(block.data.tobytes())
    return sha.hexdigest()[:16]


def _empty_csr(n_cols: int) -> CSRMatrix:
    return CSRMatrix(
        indptr=np.zeros(1, dtype=np.int64),
        indices=np.empty(0, dtype=np.int64),
        data=np.empty(0, dtype=np.float64),
        n_cols=n_cols,
    )


def _vstack_csr(blocks, n_cols: int) -> CSRMatrix:
    """Stack SciPy CSR blocks (all of width ``n_cols``) into one CSRMatrix."""
    if not blocks:
        return _empty_csr(n_cols)
    import scipy.sparse as sp

    stacked = sp.vstack(blocks, format="csr") if len(blocks) > 1 else blocks[0]
    return CSRMatrix(
        indptr=stacked.indptr,
        indices=stacked.indices,
        data=stacked.data,
        n_cols=n_cols,
    )


def _as_row_block(rows, n_cols: int) -> CSRMatrix:
    """Coerce an ingest payload into one canonical CSR block."""
    from repro.core.engine import as_csr_matrix  # deferred: engine imports us

    if isinstance(rows, (list, tuple)) and (
        not rows or isinstance(rows[0], tuple)
    ):
        pairs = [_check_row_pair(ind, val, n_cols) for ind, val in rows]
        return CSRMatrix.from_rows(pairs, n_cols=n_cols)
    csr = as_csr_matrix(rows)
    if csr.n_cols != n_cols:
        raise ConfigurationError(
            f"ingested rows have {csr.n_cols} columns, collection holds {n_cols}"
        )
    return csr


def _check_row_pair(
    indices, values, n_cols: int
) -> "tuple[np.ndarray, np.ndarray]":
    indices = np.ascontiguousarray(indices, dtype=np.int64)
    values = np.ascontiguousarray(values, dtype=np.float64)
    if indices.shape != values.shape or indices.ndim != 1:
        raise ConfigurationError(
            f"a sparse row needs equal-length 1-D indices/values, got "
            f"{indices.shape} / {values.shape}"
        )
    if len(indices) and (indices.min() < 0 or indices.max() >= n_cols):
        raise ConfigurationError(
            f"row has column indices outside [0, {n_cols})"
        )
    if len(indices) > 1 and (np.diff(indices) <= 0).any():
        raise ConfigurationError(
            "row needs strictly increasing column indices"
        )
    return indices, values


def _as_one_row(row, n_cols: int) -> CSRMatrix:
    """Coerce one updated row — dense 1-D vector or (indices, values) pair —
    into a one-row CSR block."""
    if isinstance(row, tuple) and len(row) == 2:
        return CSRMatrix.from_rows(
            [_check_row_pair(row[0], row[1], n_cols)], n_cols=n_cols
        )
    dense = np.asarray(row, dtype=np.float64)
    if dense.ndim != 1 or dense.shape[0] != n_cols:
        raise ConfigurationError(
            f"updated row must be a ({n_cols},) vector or an (indices, values) "
            f"pair, got shape {dense.shape}"
        )
    cols = np.nonzero(dense)[0].astype(np.int64)
    return CSRMatrix.from_rows([(cols, dense[cols])], n_cols=n_cols)


class MutableEngineMixin:
    """The mutation facade engines expose when serving a segmented collection.

    Shared by :class:`~repro.core.engine.TopKSpmvEngine` and
    :class:`~repro.serving.sharded.ShardedEngine`: both carry a
    ``collection`` attribute and a ``_segmented`` flag, and delegate every
    mutation to the collection (which bumps its generation, invalidating
    per-generation timing/caches on the next read).
    """

    def _mutable(self) -> "SegmentedCollection":
        if not getattr(self, "_segmented", False):
            raise ConfigurationError(
                "this deployment serves a frozen CompiledCollection; build "
                "it from a SegmentedCollection to ingest/update/delete/compact"
            )
        return self.collection

    def ingest(self, rows) -> np.ndarray:
        """Append rows to the served collection; returns their stable keys."""
        return self._mutable().ingest(rows)

    def update(self, key: int, row) -> None:
        """Replace one served row, keeping its stable key."""
        self._mutable().update(key, row)

    def delete(self, keys) -> int:
        """Tombstone served rows by stable key; returns the count deleted."""
        return self._mutable().delete(keys)

    def seal(self) -> bool:
        """Freeze the delta buffer into a new immutable segment."""
        return self._mutable().seal()

    def compact(self, **kwargs) -> int:
        """Rewrite segment runs and drop tombstoned rows (see collection)."""
        return self._mutable().compact(**kwargs)


class SegmentedCollection:
    """An ordered list of immutable segments plus a mutable delta buffer.

    Construct via :meth:`from_matrix` (compile an initial collection),
    :meth:`from_collection` (wrap an existing compiled artifact — zero
    re-encode) or :meth:`load`.  See the module docstring for the data
    model; every mutation bumps :attr:`generation`, which together with
    :attr:`digest` versions the collection for caches and routing.
    """

    def __init__(
        self,
        design: AcceleratorDesign,
        n_cols: int,
        segments: "list[Segment] | None" = None,
        seal_rows: int = DEFAULT_SEAL_ROWS,
    ):
        self.design = design
        self.n_cols = int(n_cols)
        self.seal_rows = check_positive_int(seal_rows, "seal_rows")
        self.segments: "list[Segment]" = list(segments or [])
        self.delta = _DeltaBuffer(self.n_cols)
        self.generation = 0
        self._state_token = "0"
        self._next_key = 0
        #: key -> (segment index | _DELTA, physical row) for every live key;
        #: built lazily on the first delete/update (ingest-only and
        #: query-only workloads never pay the O(n) index build).
        self._locations: "dict[int, tuple[int, int]] | None" = None
        self._caches: dict = {}
        for segment in self.segments:
            if len(segment.keys):
                self._next_key = max(
                    self._next_key, int(segment.keys.max()) + 1
                )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_collection(
        cls,
        collection: CompiledCollection,
        keys: "np.ndarray | None" = None,
        seal_rows: int = DEFAULT_SEAL_ROWS,
    ) -> "SegmentedCollection":
        """Wrap one compiled artifact as a pristine 1-segment collection.

        The artifact is adopted verbatim (streams, plans, operand, digest);
        rows get keys ``0..n_rows-1`` unless ``keys`` overrides them.
        """
        if keys is None:
            keys = np.arange(collection.n_rows, dtype=np.int64)
        segment = Segment(
            artifact=collection,
            keys=keys,
            live=np.ones(collection.n_rows, dtype=bool),
        )
        out = cls(
            design=collection.design,
            n_cols=collection.n_cols,
            segments=[segment] if collection.n_rows else [],
            seal_rows=seal_rows,
        )
        return out

    @classmethod
    def from_matrix(
        cls,
        matrix,
        design: "AcceleratorDesign | None" = None,
        seal_rows: int = DEFAULT_SEAL_ROWS,
    ) -> "SegmentedCollection":
        """Compile an initial collection and wrap it as one segment."""
        from repro.core.engine import as_csr_matrix  # deferred: engine imports us

        csr = as_csr_matrix(matrix)
        design = resolve_design(csr, design)
        if csr.n_rows == 0:
            return cls(design=design, n_cols=csr.n_cols, seal_rows=seal_rows)
        return cls.from_collection(
            compile_collection(csr, design), seal_rows=seal_rows
        )

    def _key_locations(self) -> "dict[int, tuple[int, int]]":
        """The live key index, built on first use (duplicates rejected)."""
        if self._locations is None:
            locations: "dict[int, tuple[int, int]]" = {}
            expected = 0
            for s, segment in enumerate(self.segments):
                rows = np.nonzero(segment.live)[0]
                locations.update(
                    zip(
                        segment.keys[rows].tolist(),
                        ((s, row) for row in rows.tolist()),
                    )
                )
                expected += len(rows)
            for pos, (key, alive) in enumerate(
                zip(self.delta.keys, self.delta.live)
            ):
                if alive:
                    locations[key] = (_DELTA, pos)
                    expected += 1
            if len(locations) != expected:
                raise ConfigurationError(
                    "segmented collection holds duplicate live row keys"
                )
            self._locations = locations
        return self._locations

    # ------------------------------------------------------------------ #
    # Shape, identity, caches
    # ------------------------------------------------------------------ #
    @property
    def n_segments(self) -> int:
        return len(self.segments)

    @property
    def n_live(self) -> int:
        """Rows visible to queries (segments + delta, tombstones excluded)."""
        return sum(s.n_live for s in self.segments) + self.delta.n_live

    @property
    def n_rows(self) -> int:
        """Alias of :attr:`n_live` (the logical matrix row count)."""
        return self.n_live

    @property
    def digest(self) -> str:
        """Content identity of the *sealed* tier: the ordered segment digests
        hashed under a ``segmented-collection:`` namespace.

        Deliberately distinct from a frozen artifact's digest even for a
        pristine 1-segment wrap: frozen and segmented engines answer the
        same query through different paths (``k·c`` candidate merge vs the
        global fold), so their results may differ bit for bit and must
        never share a cache entry.  The wrapped artifact itself keeps its
        digest (``segments[0].digest``) — adoption is still migration-free.
        Tombstones and the delta buffer are excluded here — they are
        versioned by :attr:`generation`, and every mutation (including mask
        flips) bumps it, so ``(digest, generation)`` always changes when
        results could.
        """
        cached = self._caches.get("digest")
        if cached is None:
            sha = hashlib.sha256(b"segmented-collection:")
            for segment in self.segments:
                sha.update(segment.digest.encode())
                sha.update(b",")
            cached = self._caches["digest"] = sha.hexdigest()
        return cached

    @property
    def state_token(self) -> str:
        """``"<generation>:<chain>"`` — the mutable tier's version string.

        The chain is a running hash over every mutation *and its content*
        (ingested bytes, updated rows, deleted keys, sealed/compacted
        segment digests), so two collections that loaded the same snapshot
        and then diverged — even by the same *number* of mutations — carry
        different tokens.  A bare generation counter cannot promise that
        across processes; ``(digest, state_token)`` can, which is what the
        serving tier keys caches and routing on.
        """
        return f"{self.generation}:{self._state_token}"

    @property
    def version(self) -> "tuple[str, str]":
        """``(digest, state_token)`` — the cache/routing key of this state."""
        return (self.digest, self.state_token)

    def _bump(self, *tag) -> None:
        self.generation += 1
        self._state_token = hashlib.sha256(
            "|".join([self._state_token, *map(str, tag)]).encode()
        ).hexdigest()[:16]
        self._caches = {}

    @property
    def matrix(self) -> CSRMatrix:
        """The live logical matrix (original float64 rows, query order).

        Built lazily and cached per generation: segments' live rows in
        segment order, then the live delta rows.  This is exactly the
        matrix a fresh ``compile_collection`` equivalent would be built
        from, so positions in it match query-result indices.
        """
        cached = self._caches.get("matrix")
        if cached is not None:
            return cached
        blocks = []
        for segment in self.segments:
            block = segment.artifact.matrix.to_scipy()
            if not segment.all_live:
                block = block[np.nonzero(segment.live)[0]]
            blocks.append(block)
        delta_csr, _ = self.delta.live_rows()
        if delta_csr.n_rows:
            blocks.append(delta_csr.to_scipy())
        matrix = _vstack_csr(blocks, self.n_cols)
        self._caches["matrix"] = matrix
        return matrix

    def live_keys(self) -> np.ndarray:
        """Stable keys of the live rows, in query (position) order."""
        cached = self._caches.get("live_keys")
        if cached is not None:
            return cached
        parts = [s.keys[s.live] for s in self.segments]
        _, delta_keys = self.delta.live_rows()
        parts.append(delta_keys)
        keys = (
            np.concatenate(parts)
            if parts
            else np.empty(0, dtype=np.int64)
        )
        self._caches["live_keys"] = keys
        return keys

    def keys_for(self, positions: np.ndarray) -> np.ndarray:
        """Translate query-result positions into stable row keys."""
        return self.live_keys()[np.asarray(positions, dtype=np.int64)]

    def compiled_delta(self) -> "CompiledCollection | None":
        """The live delta rows compiled as a 1-partition snapshot.

        Rebuilt lazily per generation (the delta is bounded by the seal
        threshold, so this is the small, cheap tail of every query);
        ``None`` when the delta holds no live rows.
        """
        if "delta" in self._caches:
            return self._caches["delta"]
        if self.delta.n_live == 0:
            compiled = None
        else:
            csr, _ = self.delta.live_rows()
            compiled = compile_collection(csr, self.design, n_partitions=1)
        self._caches["delta"] = compiled
        return compiled

    def describe(self) -> str:
        """Multi-line summary of the segmented collection."""
        lines = [
            self.design.describe(),
            f"segmented: {self.n_segments} segment(s) + "
            f"{self.delta.n_live} delta row(s), {self.n_live} live rows x "
            f"{self.n_cols} cols, generation {self.generation}",
        ]
        for s, segment in enumerate(self.segments):
            lines.append(
                f"  segment {s}: {segment.n_live}/{segment.n_rows} live rows, "
                f"{segment.artifact.nnz} nnz, digest {segment.digest[:16]}…"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def ingest(self, rows) -> np.ndarray:
        """Append new rows; returns their stable keys.

        ``rows`` may be a dense 2-D array, a :class:`CSRMatrix`, a SciPy
        sparse matrix, or a list of ``(indices, values)`` pairs.  The whole
        batch lands in the delta buffer as one block — no per-row work, no
        re-encode of any sealed segment — and the buffer auto-seals into a
        new segment when it reaches ``seal_rows`` live rows.
        """
        block = _as_row_block(rows, self.n_cols)
        if block.n_rows == 0:
            return np.empty(0, dtype=np.int64)
        keys = np.arange(
            self._next_key, self._next_key + block.n_rows, dtype=np.int64
        )
        first = self.delta.append_block(block, keys)
        if self._locations is not None:
            for i, key in enumerate(keys.tolist()):
                self._locations[key] = (_DELTA, first + i)
        self._next_key += block.n_rows
        self._bump("ingest", int(keys[0]), _block_token(block))
        if self.delta.n_live >= self.seal_rows:
            self.seal()
        return keys

    def delete(self, keys) -> int:
        """Tombstone rows by stable key; returns the number deleted.

        Raises :class:`~repro.errors.ConfigurationError` on an unknown (or
        already deleted) key — silent no-op deletes hide caller bugs.  The
        whole batch is validated before anything is tombstoned, so a failed
        delete leaves the collection (and its generation) untouched.
        """
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        locations = self._key_locations()
        resolved = []
        seen = set()
        for key in keys.tolist():
            key = int(key)
            loc = locations.get(key)
            if loc is None or key in seen:
                raise ConfigurationError(
                    f"row key {key} is not live in this collection"
                )
            seen.add(key)
            resolved.append((key, loc))
        for key, (where, row) in resolved:
            del locations[key]
            if where == _DELTA:
                self.delta.tombstone(row)
            else:
                self.segments[where].tombstone(row)
        self._bump("delete", *keys.tolist())
        return len(keys)

    def update(self, key: int, row) -> None:
        """Replace one row's embedding, keeping its stable key.

        The current version is tombstoned where it lives (segment or delta)
        and the new version appended to the delta — so an updated row moves
        to the end of the query ordering, exactly as if it were deleted and
        re-ingested with its old key.
        """
        key = int(key)
        block = _as_one_row(row, self.n_cols)
        self._tombstone_key(key)
        pos = self.delta.append_block(block, np.array([key], dtype=np.int64))
        self._key_locations()[key] = (_DELTA, pos)
        self._bump("update", key, _block_token(block))
        if self.delta.n_live >= self.seal_rows:
            self.seal()

    def _tombstone_key(self, key: int) -> None:
        try:
            where, row = self._key_locations().pop(int(key))
        except KeyError:
            raise ConfigurationError(
                f"row key {key} is not live in this collection"
            ) from None
        if where == _DELTA:
            self.delta.tombstone(row)
        else:
            self.segments[where].tombstone(row)

    def seal(self) -> bool:
        """Freeze the delta buffer into a new immutable segment.

        Dead delta rows are dropped in the process.  Returns True when a
        segment was produced (False on an empty/all-dead delta, which is
        still cleared).
        """
        csr, keys = self.delta.live_rows()
        had_rows = len(self.delta) > 0
        self.delta.clear()
        if csr.n_rows == 0:
            if had_rows:
                self._bump("seal-empty")
            return False
        artifact = compile_collection(
            csr, self.design, n_partitions=self._segment_partitions(csr.n_rows)
        )
        segment = Segment(
            artifact=artifact,
            keys=keys,
            live=np.ones(csr.n_rows, dtype=bool),
        )
        self.segments.append(segment)
        if self._locations is not None:
            s = len(self.segments) - 1
            for row, key in enumerate(keys.tolist()):
                self._locations[key] = (s, row)
        self._bump("seal", segment.digest)
        return True

    def compact(
        self, include_delta: bool = True, keep_clean_over: "int | None" = None
    ) -> int:
        """Rewrite segment runs into one, dropping tombstoned rows.

        Adjacent segments are merged (the query ordering — segments in
        order — is preserved, which the equivalence guarantee depends on);
        a tombstone-free segment with at least ``keep_clean_over`` live
        rows is left untouched and breaks the run around it, so large
        settled segments are reused verbatim (zero re-encode, zero rewrite
        on the next :meth:`save`).  ``keep_clean_over=None`` (default)
        compacts everything into a single segment.  With ``include_delta``
        the delta buffer is sealed first, so a full compaction leaves one
        segment and an empty delta.  Returns the number of segments
        rewritten.
        """
        if include_delta:
            self.seal()

        def keeps(segment: Segment) -> bool:
            return (
                keep_clean_over is not None
                and segment.all_live
                and segment.n_live >= keep_clean_over
            )

        new_segments: "list[Segment]" = []
        run: "list[Segment]" = []
        rewritten = 0

        def flush() -> None:
            nonlocal rewritten
            if not run:
                return
            if len(run) == 1 and run[0].all_live:
                new_segments.append(run[0])  # nothing to rewrite
            else:
                merged = self._merge_segments(run)
                if merged is not None:  # a run of pure tombstones vanishes
                    new_segments.append(merged)
                rewritten += len(run)
            run.clear()

        for segment in self.segments:
            if keeps(segment):
                flush()
                new_segments.append(segment)
            else:
                run.append(segment)
        flush()
        if rewritten == 0 and len(new_segments) == len(self.segments):
            return 0
        self.segments = new_segments
        self._locations = None  # rebuilt lazily against the new layout
        self._bump("compact", *[s.digest for s in new_segments])
        return rewritten

    def _segment_partitions(self, n_rows: int) -> int:
        """Channels a sealed/merged segment spreads over (see the constant)."""
        return max(
            1,
            min(
                self.design.cores,
                -(-n_rows // _MIN_SEGMENT_ROWS_PER_PARTITION),
            ),
        )

    def _merge_segments(self, run: "list[Segment]") -> "Segment | None":
        """Compile one segment from a run's live rows (order preserved).

        ``None`` when the run holds no live rows (it was all tombstones).
        """
        blocks = []
        keys = []
        for segment in run:
            alive = np.nonzero(segment.live)[0]
            if len(alive) == 0:
                continue
            block = segment.artifact.matrix.to_scipy()
            if not segment.all_live:
                block = block[alive]
            blocks.append(block)
            keys.append(segment.keys[alive])
        if not blocks:
            return None
        merged = _vstack_csr(blocks, self.n_cols)
        artifact = compile_collection(
            merged, self.design, n_partitions=self._segment_partitions(merged.n_rows)
        )
        all_keys = np.concatenate(keys)
        return Segment(
            artifact=artifact,
            keys=all_keys,
            live=np.ones(len(all_keys), dtype=bool),
        )

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path) -> None:
        """Persist as a manifest directory (see module docstring).

        Segment artifacts are written content-addressed
        (``segment-<digest16>.npz``); a file already present for the same
        digest is reused without a rewrite, so successive saves only pay
        for *new* segments plus the small state artifact and manifest.
        """
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        members = []
        for segment in self.segments:
            digest = segment.digest
            name = f"segment-{digest[:16]}.npz"
            target = path / name
            if not target.exists():
                # Write-then-rename: a crash mid-write must not leave a
                # truncated file that later saves would skip as "present".
                tmp = path / (name + ".tmp")
                segment.artifact.save(tmp)
                tmp.replace(target)
            members.append(
                {
                    "file": name,
                    "digest": digest,
                    "n_rows": segment.n_rows,
                    "n_live": segment.n_live,
                }
            )
        state_name = "state.npz"
        state_tmp = path / (state_name + ".tmp")
        save_artifact(
            state_tmp,
            SEGMENT_STATE_KIND,
            self._state_header(),
            self._state_arrays(),
        )
        state_tmp.replace(path / state_name)
        save_manifest(
            path,
            SEGMENT_MANIFEST_KIND,
            {
                "generation": self.generation,
                "n_cols": self.n_cols,
                "seal_rows": self.seal_rows,
                "next_key": self._next_key,
                "design": asdict(self.design),
                "state_file": state_name,
                "digest": self.digest,
            },
            members,
        )

    def _state_header(self) -> dict:
        return {
            "generation": self.generation,
            "state_token": self._state_token,
            "n_cols": self.n_cols,
            "n_segments": self.n_segments,
            "delta_rows": int(self.delta.n_live),
        }

    def _state_arrays(self) -> "dict[str, np.ndarray]":
        seg_rows = np.array([s.n_rows for s in self.segments], dtype=np.int64)
        keys = (
            np.concatenate([s.keys for s in self.segments])
            if self.segments
            else np.empty(0, dtype=np.int64)
        )
        live = (
            np.concatenate([s.live for s in self.segments])
            if self.segments
            else np.empty(0, dtype=bool)
        )
        delta_csr, delta_keys = self.delta.live_rows()
        return {
            "segment_rows": seg_rows,
            "keys": keys,
            "live": live,
            "delta_indptr": delta_csr.indptr,
            "delta_indices": delta_csr.indices,
            "delta_data": delta_csr.data,
            "delta_keys": delta_keys,
        }

    @classmethod
    def load(cls, path, verify: bool = True) -> "SegmentedCollection":
        """Reload a manifest directory — or adopt a plain collection ``.npz``.

        A plain PR-2/PR-4 ``CompiledCollection`` artifact loads as a
        pristine 1-segment collection: the artifact is adopted verbatim
        (its digest and aux operand buffers unchanged), keys
        ``0..n_rows-1`` — no migration, no re-encode.
        """
        path = Path(path)
        if path.is_file():
            return cls.from_collection(CompiledCollection.load(path, verify=verify))
        header, members = load_manifest(path, SEGMENT_MANIFEST_KIND)
        try:
            design = AcceleratorDesign(**header["design"])
            seal_rows = int(header["seal_rows"])
            state_header, state = load_artifact(
                path / str(header["state_file"]), SEGMENT_STATE_KIND, verify=verify
            )
            if int(state_header["generation"]) != int(header["generation"]):
                raise FormatError(
                    f"{path}: state generation "
                    f"{state_header['generation']} disagrees with the "
                    f"manifest's {header['generation']} — torn save; "
                    "re-save the collection"
                )
            segments = []
            offset = 0
            seg_rows = state["segment_rows"]
            if len(seg_rows) != len(members):
                raise FormatError(
                    f"{path}: state holds {len(seg_rows)} segments, manifest "
                    f"lists {len(members)}"
                )
            for entry, n_rows in zip(members, seg_rows.tolist()):
                artifact = CompiledCollection.load(
                    path / str(entry["file"]), verify=verify
                )
                if artifact.digest != entry["digest"]:
                    raise FormatError(
                        f"{path}: segment {entry['file']} digest disagrees "
                        "with the manifest"
                    )
                if artifact.n_rows != n_rows:
                    raise FormatError(
                        f"{path}: segment {entry['file']} holds "
                        f"{artifact.n_rows} rows, state expects {n_rows}"
                    )
                segments.append(
                    Segment(
                        artifact=artifact,
                        keys=state["keys"][offset : offset + n_rows],
                        live=state["live"][offset : offset + n_rows],
                    )
                )
                offset += n_rows
            out = cls(
                design=design,
                n_cols=int(header["n_cols"]),
                segments=segments,
                seal_rows=seal_rows,
            )
            delta_csr = CSRMatrix(
                indptr=state["delta_indptr"],
                indices=state["delta_indices"],
                data=state["delta_data"],
                n_cols=int(header["n_cols"]),
            )
            delta_keys = state["delta_keys"]
            if delta_csr.n_rows:
                out.delta.append_block(delta_csr, delta_keys)
            out.generation = int(header["generation"])
            out._state_token = str(state_header["state_token"])
            out._next_key = max(out._next_key, int(header["next_key"]))
            return out
        except (KeyError, TypeError, ValueError) as exc:
            raise FormatError(
                f"{path} has an incomplete segmented-collection manifest"
            ) from exc
