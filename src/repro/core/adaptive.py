"""Adaptive precision/design selection (the paper's first future-work item).

Section VI: *"Future work will focus on adaptive compressed matrix
representations by reconfiguring the FPGA in terms of numerical precision to
guarantee desired targets of accuracy or performance."*

:func:`select_design` searches the (value-width, cores, k) space with the
library's analytical models and returns the fastest design meeting an
accuracy target — or the most accurate design meeting a latency target —
for a given workload on a given board.  The accuracy model combines:

* **partition error** — the exact expected precision of the k-of-c
  truncation (:mod:`repro.core.precision_model`), and
* **quantisation error** — the probability that value rounding flips a
  rank boundary, estimated from the workload's score-gap statistics
  (``score_gap`` ≈ the typical score difference around rank K; rounding
  two scores by ±ε/2 each flips their order with probability
  ``max(0, 1 - gap/(2ε))``-ish; we use a conservative linear model
  calibrated so 20-bit values keep >=97% precision on the paper's
  workloads, matching Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.precision_model import expected_precision
from repro.errors import ConfigurationError
from repro.hw.design import AcceleratorDesign
from repro.hw.multicore import TopKSpmvAccelerator
from repro.hw.power import estimate_fpga_power_w
from repro.hw.resources import ResourceModel
from repro.utils.validation import check_in_range, check_positive_int

__all__ = ["WorkloadProfile", "DesignChoice", "quantisation_precision", "select_design"]

#: Candidate value widths the reconfigurable overlay can switch between.
CANDIDATE_VALUE_BITS = (14, 16, 20, 25, 32)
CANDIDATE_LOCAL_K = (4, 8, 16)


@dataclass(frozen=True)
class WorkloadProfile:
    """What the selector needs to know about the collection and queries."""

    n_rows: int
    n_cols: int
    avg_nnz: int
    top_k: int
    #: Typical relative score gap around rank K (fraction of the top score).
    #: Cosine-similarity workloads at N ~ 10^6 sit around 1e-3..1e-2;
    #: estimate with :meth:`from_matrix` when a sample is available.
    score_gap: float = 3e-3

    def __post_init__(self) -> None:
        check_positive_int(self.n_rows, "n_rows")
        check_positive_int(self.n_cols, "n_cols")
        check_positive_int(self.avg_nnz, "avg_nnz")
        check_positive_int(self.top_k, "top_k")
        check_in_range(self.score_gap, "score_gap", 0.0, 1.0, low_inclusive=False)

    @classmethod
    def from_matrix(cls, matrix, queries: np.ndarray, top_k: int) -> "WorkloadProfile":
        """Measure the score-gap statistic from a matrix sample and queries."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        gaps = []
        for x in queries:
            scores = np.sort(matrix.matvec(x))[::-1]
            k = min(top_k, len(scores) - 1)
            window = scores[max(0, k - 5) : k + 5]
            if len(window) > 1 and window[0] > 0:
                gaps.append(float(np.mean(-np.diff(window))) / float(window[0]))
        gap = float(np.median(gaps)) if gaps else 3e-3
        return cls(
            n_rows=matrix.n_rows,
            n_cols=matrix.n_cols,
            avg_nnz=max(1, matrix.nnz // max(1, matrix.n_rows)),
            top_k=top_k,
            score_gap=max(gap, 1e-6),
        )


def quantisation_precision(value_bits: int, workload: WorkloadProfile) -> float:
    """Expected precision retained under value quantisation alone.

    A rank boundary at gap ``g`` (relative) survives rounding noise of
    magnitude ``eps = 2^-(value_bits-1)`` accumulated over ``avg_nnz``
    products (error grows ~ sqrt(nnz) for independent roundings).  The
    fraction of the K boundaries flipped is modelled as
    ``min(1, eps_eff / (2 g))`` and each flip costs one retrieved item.
    """
    check_positive_int(value_bits, "value_bits")
    eps = 2.0 ** -(value_bits - 1)
    eps_eff = eps * np.sqrt(workload.avg_nnz)
    flip_fraction = min(1.0, eps_eff / (2.0 * workload.score_gap))
    # Only boundaries (not all K items) are at risk; ~10% of items sit near
    # a contested boundary in practice (calibrated to Figure 7's 20-bit
    # curves staying above 97%).
    return 1.0 - 0.1 * flip_fraction


@dataclass(frozen=True)
class DesignChoice:
    """The selector's output: a design plus its predicted operating point."""

    design: AcceleratorDesign
    predicted_precision: float
    predicted_latency_s: float
    predicted_power_w: float

    def describe(self) -> str:
        """One-line summary for logs."""
        return (
            f"{self.design.name}: precision~{self.predicted_precision:.4f}, "
            f"latency~{self.predicted_latency_s * 1e3:.3f} ms, "
            f"{self.predicted_power_w:.1f} W"
        )


def select_design(
    workload: WorkloadProfile,
    min_precision: float | None = None,
    max_latency_s: float | None = None,
    max_cores: int = 32,
    arithmetic: str = "fixed",
) -> DesignChoice:
    """Pick the best design for a workload under accuracy/latency targets.

    With ``min_precision`` set, returns the *fastest* design meeting it;
    with ``max_latency_s`` set, the *most accurate* design meeting it; with
    both, the fastest meeting both.  Raises
    :class:`~repro.errors.ConfigurationError` when no candidate satisfies
    the targets.
    """
    if min_precision is None and max_latency_s is None:
        raise ConfigurationError(
            "set min_precision and/or max_latency_s to guide the selection"
        )
    if min_precision is not None:
        check_in_range(min_precision, "min_precision", 0.0, 1.0)
    if max_latency_s is not None:
        check_in_range(max_latency_s, "max_latency_s", 0.0, None, low_inclusive=False)
    check_positive_int(max_cores, "max_cores")

    model = ResourceModel()
    row_lengths = np.full(workload.n_rows, workload.avg_nnz, dtype=np.int64)
    candidates: list[DesignChoice] = []
    for value_bits in CANDIDATE_VALUE_BITS:
        for local_k in CANDIDATE_LOCAL_K:
            cores = min(max_cores, 32)
            if local_k * cores < workload.top_k:
                continue
            design = AcceleratorDesign(
                name=f"adaptive {value_bits}b {cores}C k{local_k}",
                value_bits=value_bits,
                arithmetic=arithmetic,
                cores=cores,
                local_k=local_k,
                max_columns=max(1024, workload.n_cols),
            )
            if not model.total(design).fits(model.available):
                continue
            precision = expected_precision(
                workload.n_rows, cores, local_k, workload.top_k
            ) * quantisation_precision(value_bits, workload)
            accel = TopKSpmvAccelerator(design)
            latency = accel.timing_estimate_from_row_lengths(row_lengths).total_seconds
            candidates.append(
                DesignChoice(
                    design=design,
                    predicted_precision=precision,
                    predicted_latency_s=latency,
                    predicted_power_w=estimate_fpga_power_w(design),
                )
            )

    feasible = [
        c
        for c in candidates
        if (min_precision is None or c.predicted_precision >= min_precision)
        and (max_latency_s is None or c.predicted_latency_s <= max_latency_s)
    ]
    if not feasible:
        raise ConfigurationError(
            f"no design meets the targets (precision>={min_precision}, "
            f"latency<={max_latency_s}) for this workload"
        )
    if min_precision is not None:
        return min(feasible, key=lambda c: (c.predicted_latency_s, -c.predicted_precision))
    return max(feasible, key=lambda c: (c.predicted_precision, -c.predicted_latency_s))
