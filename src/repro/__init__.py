"""repro — reproduction of "Scaling up HBM Efficiency of Top-K SpMV for
Approximate Embedding Similarity on FPGAs" (Parravicini et al., DAC 2021).

The library provides, in pure Python/NumPy:

* the **BS-CSR** streaming sparse format (bit-exact packets, Section III-B);
* the **partitioned Top-K approximation** and its precision theory
  (Section III-A, Eq. 1, Table I);
* a **functional + analytical simulation** of the multi-core HBM FPGA
  design (Algorithm 1, Table II, Figures 5-7);
* **CPU/GPU baseline models** (sparse_dot_topn, cuSPARSE+Thrust);
* workload generators for every Table III matrix;
* experiment runners regenerating every table and figure of the paper.

Quickstart
----------
>>> from repro import TopKSpmvEngine, PAPER_DESIGNS
>>> from repro.data import synthetic_embeddings
>>> import numpy as np
>>> A = synthetic_embeddings(n_rows=50_000, n_cols=512, avg_nnz=20, seed=1)
>>> x = np.abs(np.random.default_rng(2).standard_normal(512)); x /= np.linalg.norm(x)
>>> engine = TopKSpmvEngine(A, design=PAPER_DESIGNS["20b"])
>>> hits = engine.query(x, top_k=10).topk
"""

from repro.core.collection import CompiledCollection, compile_collection
from repro.core.segments import Segment, SegmentedCollection
from repro.core.engine import TopKSpmvEngine, EngineResult, BatchResult
from repro.core.kernels import available_kernels
from repro.core.reference import TopKResult, exact_topk_spmv
from repro.core.approx import approximate_topk_spmv
from repro.core.precision_model import (
    expected_precision,
    estimate_precision_monte_carlo,
)
from repro.formats import BSCSRMatrix, CSRMatrix, COOMatrix, PacketLayout, solve_layout
from repro.hw.design import AcceleratorDesign, PAPER_DESIGNS, design_by_name
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "CompiledCollection",
    "compile_collection",
    "Segment",
    "SegmentedCollection",
    "TopKSpmvEngine",
    "EngineResult",
    "BatchResult",
    "available_kernels",
    "TopKResult",
    "exact_topk_spmv",
    "approximate_topk_spmv",
    "expected_precision",
    "estimate_precision_monte_carlo",
    "BSCSRMatrix",
    "CSRMatrix",
    "COOMatrix",
    "PacketLayout",
    "solve_layout",
    "AcceleratorDesign",
    "PAPER_DESIGNS",
    "design_by_name",
    "ReproError",
    "__version__",
]
