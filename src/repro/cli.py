"""Command-line interface: regenerate any table/figure of the paper.

Usage::

    python -m repro table1            # one experiment
    python -m repro all               # everything (writes nothing)
    python -m repro all -o EXPERIMENTS_RUN.md
    python -m repro figure7 --quick   # reduced scale for a fast look
    python -m repro serve-bench --shards 4 --batch-size 16 --json serve.json
    python -m repro serve-bench --replicas 4 --router power-of-two \
        --cache-size 256 --queue-capacity 32   # the cluster tier
    python -m repro serve-bench --kernel contraction   # pick a SpMV kernel
    python -m repro bench-all                 # every benchmark + summary
    python -m repro serve-live --port 7777 --replicas 2 --cache-size 256
    python -m repro load-gen --port 7777 --n-queries 256 --rate-qps 500 \
        --duplicate-fraction 0.2 --shutdown   # real p50/p99/QPS + replay check

Build/serve split (the production workflow)::

    python -m repro compile synthetic out.npz --rows 50000 --design 20b
    python -m repro compile glove glove.npz --rows 20000
    python -m repro serve-bench --collection out.npz --shards 4

``compile`` runs the one-time build pipeline (partition + quantise + BS-CSR
encode) and persists the artifact; ``serve-bench --collection`` restarts a
serving fleet from it without re-encoding anything.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.experiments import ALL_EXPERIMENTS, ExperimentConfig

__all__ = ["main", "build_parser", "consolidate_bench_results"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce tables and figures of 'Scaling up HBM Efficiency of "
            "Top-K SpMV for Approximate Embedding Similarity on FPGAs' (DAC 2021)"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(ALL_EXPERIMENTS)
        + ["all", "serve-bench", "compile", "tune", "bench-all", "ingest",
           "serve-live", "load-gen"],
        help="which experiment to regenerate (serve-bench runs the sharded "
        "batch serving simulation; compile builds and saves a servable "
        "collection artifact instead of a paper artifact; tune searches "
        "row placements against the cost model + probe queries and saves "
        "the winning layout; bench-all runs "
        "every benchmarks/bench_*.py emitter and consolidates the results; "
        "ingest drives a mutation workload through a segmented collection "
        "and compares incremental ingest against a full recompile; "
        "serve-live starts the asyncio serving daemon on a real socket; "
        "load-gen drives a wall-clock Poisson stream at a running daemon)",
    )
    parser.add_argument(
        "rest",
        nargs="*",
        metavar="ARG",
        help="for compile/tune: <dataset> <out.npz> where dataset is "
        "'synthetic', 'zipf' or 'glove'",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced scale (fewer trials/queries/rows) for a fast run",
    )
    parser.add_argument(
        "--paper-scale", action="store_true",
        help="the paper's evaluation scale (30 queries; slower)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the root seed"
    )
    parser.add_argument(
        "--rows", type=int, default=None,
        help="override the functional matrix row count",
    )
    parser.add_argument(
        "-o", "--output", type=str, default=None,
        help="also write the report(s) to this file",
    )
    serving = parser.add_argument_group("serve-bench options")
    serving.add_argument(
        "--shards", type=int, default=4,
        help="number of simulated boards to row-shard across (default 4)",
    )
    serving.add_argument(
        "--cores-per-shard", type=int, default=None,
        help="give each shard its own full board with this many cores "
        "(default: spread the design's partition streams across shards)",
    )
    serving.add_argument(
        "--batch-size", type=int, default=16,
        help="micro-batcher max batch size (default 16)",
    )
    serving.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="micro-batcher coalescing deadline in ms (default 2.0)",
    )
    serving.add_argument(
        "--n-queries", type=int, default=256,
        help="length of the simulated query stream (default 256)",
    )
    serving.add_argument(
        "--rate-qps", type=float, default=None,
        help="offered Poisson load; default ~80%% of fleet scan capacity",
    )
    serving.add_argument(
        "--design", type=str, default="20b",
        choices=["20b", "25b", "32b", "f32"],
        help="accelerator design point served (default 20b)",
    )
    serving.add_argument(
        "--replicas", type=int, default=1,
        help="replicate the sharded fleet N times behind the cluster "
        "runtime (default 1: single fleet, no cluster tier)",
    )
    serving.add_argument(
        "--router", type=str, default="round-robin",
        choices=["round-robin", "least-outstanding", "power-of-two"],
        help="cluster routing policy (default round-robin; any non-default "
        "value engages the cluster tier even with --replicas 1)",
    )
    serving.add_argument(
        "--cache-size", type=int, default=0,
        help="exact-result LRU cache capacity in entries (default 0: "
        "disabled); hits are bit-identical to engine results",
    )
    serving.add_argument(
        "--queue-capacity", type=int, default=None,
        help="admission control: max queued requests per replica before "
        "rejection (default: unbounded)",
    )
    serving.add_argument(
        "--kernel", type=str, default=None,
        help="batch-query kernel backend: auto, gather, streaming, "
        "contraction or native (default: $REPRO_KERNEL or auto); every "
        "backend is bit-identical — this only changes speed",
    )
    serving.add_argument(
        "--kernel-workers", type=str, default=None,
        help="partition-parallel workers for the batch kernel; 'auto' or 0 "
        "means all cores (default: $REPRO_KERNEL_WORKERS or 1)",
    )
    serving.add_argument(
        "--executor", type=str, default=None, choices=["thread", "process"],
        help="partition executor for the batch kernel: thread (default) or "
        "process — spawned workers attaching the plan buffers via shared "
        "memory (default: $REPRO_KERNEL_EXECUTOR or thread); bit-neutral",
    )
    serving.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="also dump the serve-bench numbers as JSON",
    )
    live = parser.add_argument_group("serve-live / load-gen options")
    live.add_argument(
        "--host", type=str, default="127.0.0.1",
        help="bind/connect address for the live daemon (default 127.0.0.1)",
    )
    live.add_argument(
        "--port", type=int, default=None,
        help="serve-live: port to bind (default: ephemeral, printed at "
        "startup); load-gen: port to connect to (required)",
    )
    live.add_argument(
        "--top-k", type=int, default=10,
        help="K the live daemon serves every request at (default 10)",
    )
    live.add_argument(
        "--duplicate-fraction", type=float, default=0.0,
        help="load-gen: probability of resending an earlier query, to "
        "exercise the exact-result cache (default 0.0)",
    )
    live.add_argument(
        "--no-verify", action="store_true",
        help="load-gen: skip the server-side replay equivalence check",
    )
    live.add_argument(
        "--shutdown", action="store_true",
        help="load-gen: stop the daemon after the run (the CI smoke path)",
    )
    live.add_argument(
        "--timeout-s", type=float, default=120.0,
        help="load-gen: overall client timeout in seconds (default 120)",
    )
    faults = parser.add_argument_group(
        "fault tolerance options (serve-live; see README)"
    )
    faults.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="max re-dispatch attempts per request after a replica failure "
        "(default: the library default, 2)",
    )
    faults.add_argument(
        "--backoff-ms", type=float, default=None, metavar="MS",
        help="base of the seeded exponential retry backoff in ms "
        "(default: the library default, 1.0)",
    )
    faults.add_argument(
        "--hedge-after-ms", type=float, default=None, metavar="MS",
        help="duplicate a request onto a second replica when its first "
        "dispatch has waited this long (default: hedging off)",
    )
    faults.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-request wall deadline; past it the client gets a typed "
        "'deadline' error frame (default: none)",
    )
    faults.add_argument(
        "--max-pending", type=int, default=None, metavar="N",
        help="load-shed admission bound on queued + in-flight requests "
        "(default: unbounded)",
    )
    faults.add_argument(
        "--max-frame-bytes", type=int, default=None, metavar="N",
        help="tighten the per-frame wire cap below the protocol-wide limit "
        "(default: the protocol cap)",
    )
    faults.add_argument(
        "--fault-plan", type=str, default=None, metavar="PATH",
        help="replay a seeded fault-injection plan (JSON written by "
        "FaultPlan.to_json or benchmarks/bench_chaos.py) against the "
        "serving tier",
    )
    faults.add_argument(
        "--chaos-seed", type=int, default=None, metavar="SEED",
        help="generate a seeded FaultPlan (crashes + slow windows) instead "
        "of loading one from --fault-plan",
    )
    bench_all = parser.add_argument_group("bench-all options")
    bench_all.add_argument(
        "--only", type=str, default=None, metavar="SUBSTRING",
        help="run only the bench_*.py files whose name contains this",
    )
    bench_all.add_argument(
        "--benchmarks-dir", type=str, default="benchmarks", metavar="DIR",
        help="directory holding the bench_*.py emitters (default: benchmarks)",
    )
    serving.add_argument(
        "--collection", type=str, default=None, metavar="PATH",
        help="serve a compiled collection artifact (output of "
        "'repro compile') instead of building a synthetic one; "
        "--rows/--design are then taken from the artifact (aligned mode "
        "serves its buffers as-is; --cores-per-shard re-encodes per shard)",
    )
    ingest = parser.add_argument_group("ingest options")
    ingest.add_argument(
        "--delta-frac", type=float, default=0.01,
        help="ingested delta as a fraction of the base collection's rows "
        "(default 0.01, the 1%% scenario the CI floor tracks)",
    )
    ingest.add_argument(
        "--updates", type=int, default=0,
        help="random row updates to apply after the ingest (default 0)",
    )
    ingest.add_argument(
        "--deletes", type=int, default=0,
        help="random row deletes to apply after the ingest (default 0)",
    )
    ingest.add_argument(
        "--seal-rows", type=int, default=None,
        help="delta-buffer seal threshold in live rows (default: the "
        "library default)",
    )
    ingest.add_argument(
        "--compact", action="store_true",
        help="compact after the mutations and report the query-time change",
    )
    ingest.add_argument(
        "--save", type=str, default=None, metavar="DIR",
        help="persist the mutated collection as a segment-manifest directory",
    )
    ingest.add_argument(
        "--verify-queries", type=int, default=8,
        help="queries checked bit-identical against a fresh recompile of "
        "the equivalent final matrix (default 8; 0 disables)",
    )
    tune = parser.add_argument_group("tune options")
    tune.add_argument(
        "--partitions", type=int, default=None,
        help="HBM channels / partitions to place across (default: the "
        "design's core count)",
    )
    tune.add_argument(
        "--n-probes", type=int, default=32,
        help="probe queries the skip estimator and measured ranking use "
        "(default 32)",
    )
    tune.add_argument(
        "--anneal-iters", type=int, default=64,
        help="boundary-shift annealing iterations on the best candidate "
        "(default 64; 0 disables)",
    )
    tune.add_argument(
        "--no-measure", action="store_true",
        help="rank by the cost model alone — skips the compile+sweep "
        "calibration and finalist measurement (cheaper, less faithful)",
    )
    dataset_group = parser.add_argument_group(
        "dataset options (compile, tune, serve-bench and ingest)"
    )
    dataset_group.add_argument(
        "--cols", type=int, default=512,
        help="embedding dimension of the built dataset (default 512)",
    )
    dataset_group.add_argument(
        "--avg-nnz", type=int, default=20,
        help="average non-zeros per row of the built dataset (default 20)",
    )
    return parser


def _serve_bench_config(args: argparse.Namespace) -> "ServeBenchConfig":
    from repro.serving.bench import ServeBenchConfig

    config = ServeBenchConfig(
        design=args.design,
        cols=args.cols,
        avg_nnz=args.avg_nnz,
        n_shards=args.shards,
        cores_per_shard=args.cores_per_shard,
        n_queries=args.n_queries,
        max_batch_size=args.batch_size,
        max_wait_ms=args.max_wait_ms,
        rate_qps=args.rate_qps,
        seed=args.seed if args.seed is not None else 0,
        collection=args.collection,
        replicas=args.replicas,
        router=args.router,
        cache_size=args.cache_size,
        queue_capacity=args.queue_capacity,
        kernel=args.kernel,
        kernel_workers=args.kernel_workers,
        kernel_executor=args.executor,
    )
    if args.quick:
        config = config.quick()
    if args.rows is not None:
        from dataclasses import replace

        config = replace(config, rows=args.rows)
    return config


def _run_serve_bench(args: argparse.Namespace) -> int:
    from repro.serving.bench import run_serve_bench, write_json

    if args.paper_scale:
        raise SystemExit(
            "serve-bench has no paper-scale preset; size it with "
            "--rows/--n-queries instead"
        )
    started = time.perf_counter()
    text, payload = run_serve_bench(_serve_bench_config(args))
    elapsed = time.perf_counter() - started
    print(text)
    print(f"[serve-bench completed in {elapsed:.1f}s]\n", file=sys.stderr)
    if args.json:
        write_json(payload, args.json)
        print(f"wrote {args.json}", file=sys.stderr)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


def _fault_options(args: argparse.Namespace):
    """(fault_plan, resilience) from the CLI fault-tolerance flags."""
    from repro.serving.faults import FaultPlan, ResilienceConfig

    if args.fault_plan is not None and args.chaos_seed is not None:
        raise SystemExit("--fault-plan and --chaos-seed are mutually exclusive")
    plan = None
    if args.fault_plan is not None:
        with open(args.fault_plan, "r", encoding="utf-8") as handle:
            plan = FaultPlan.from_json(handle.read())
    elif args.chaos_seed is not None:
        # A virtual-time horizon wide enough to cover any realistic stream;
        # deterministic in the seed, so a chaos run is replayable by flag.
        plan = FaultPlan.generate(
            seed=args.chaos_seed,
            n_replicas=args.replicas,
            horizon_s=max(1.0, args.n_queries / (args.rate_qps or 200.0)),
        )
    defaults = ResilienceConfig()
    resilience = None
    if (
        args.retries is not None
        or args.backoff_ms is not None
        or args.hedge_after_ms is not None
        or plan is not None
    ):
        resilience = ResilienceConfig(
            max_retries=(
                defaults.max_retries if args.retries is None else args.retries
            ),
            backoff_base_s=(
                defaults.backoff_base_s
                if args.backoff_ms is None
                else args.backoff_ms * 1e-3
            ),
            hedge_after_s=(
                None if args.hedge_after_ms is None
                else args.hedge_after_ms * 1e-3
            ),
            seed=args.seed if args.seed is not None else 0,
        )
    return plan, resilience


def _build_live_runtime(args: argparse.Namespace):
    """One configured ClusterRuntime for serve-live (bench-config reuse)."""
    from repro.serving.bench import _build_collection
    from repro.serving.cluster import ClusterRuntime
    from repro.serving.sharded import ShardedEngine

    config = _serve_bench_config(args)
    fault_plan, resilience = _fault_options(args)
    compiled, _design_name = _build_collection(config)
    replicas = [
        ShardedEngine(
            compiled,
            n_shards=config.n_shards,
            cores_per_shard=config.cores_per_shard,
            kernel=config.kernel,
            kernel_workers=config.kernel_workers,
            kernel_executor=config.kernel_executor,
        )
        for _ in range(config.replicas)
    ]
    return ClusterRuntime(
        replicas,
        router=config.router,
        cache_size=config.cache_size or None,
        max_batch_size=config.max_batch_size,
        max_wait_s=config.max_wait_ms * 1e-3,
        queue_capacity=config.queue_capacity,
        router_seed=config.seed,
        fault_plan=fault_plan,
        resilience=resilience,
    )


def _run_serve_live(args: argparse.Namespace) -> int:
    """Start the asyncio daemon and serve until SIGINT or a shutdown op."""
    import asyncio
    import signal

    from repro.serving.live import LiveServer

    runtime = _build_live_runtime(args)
    if runtime.fault_plan is not None and not runtime.fault_plan.is_empty:
        plan = runtime.fault_plan
        print(
            f"fault injection active: {len(plan.crashes)} crash(es), "
            f"{len(plan.slow)} slow window(s), "
            f"{len(plan.engine_faults)} engine fault(s) [seed {plan.seed}]",
            file=sys.stderr,
        )
    server = LiveServer(
        runtime,
        top_k=args.top_k,
        host=args.host,
        port=args.port if args.port is not None else 0,
        warmup=True,
        deadline_s=(
            None if args.deadline_ms is None else args.deadline_ms * 1e-3
        ),
        max_pending=args.max_pending,
        max_frame_bytes=args.max_frame_bytes,
    )

    async def runner() -> None:
        await server.start()
        print(
            f"live serving daemon on {server.host}:{server.port} "
            f"({runtime.n_replicas} replica(s), router {runtime.router.name}, "
            f"top_k {server.top_k}) — Ctrl-C or a shutdown op stops it",
            file=sys.stderr,
        )
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, server.request_stop)
            except (NotImplementedError, RuntimeError):
                pass
        await server.serve_until_stopped()

    asyncio.run(runner())
    stats = server.wall_stats()
    payload: dict = {"wall": stats.to_dict(), "info": server.info()}
    lines = [
        f"wall clock: {stats.n_completed} completed | "
        f"{stats.n_rejected} rejected | p50 "
        f"{stats.p50_latency_s * 1e3:.3f} ms | p99 "
        f"{stats.p99_latency_s * 1e3:.3f} ms | {stats.qps:.1f} QPS",
    ]
    if stats.n_offered:
        _results, report = server.decision_report()
        payload["decision"] = report.to_dict()
        lines.append(report.render())
    text = "\n".join(lines)
    print(text)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}", file=sys.stderr)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


def _run_load_gen(args: argparse.Namespace) -> int:
    """Drive one wall-clock stream at a running daemon; report the numbers."""
    from repro.serving.loadgen import load_gen

    if args.port is None:
        raise SystemExit("load-gen needs --port (the daemon's port)")
    result = load_gen(
        args.host,
        args.port,
        n_queries=args.n_queries,
        rate_qps=args.rate_qps if args.rate_qps is not None else 200.0,
        seed=args.seed if args.seed is not None else 0,
        duplicate_fraction=args.duplicate_fraction,
        verify=not args.no_verify,
        shutdown=args.shutdown,
        timeout_s=args.timeout_s,
    )
    text = result.render()
    print(text)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}", file=sys.stderr)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    verdict = result.verify
    if verdict is not None and verdict.get("ok") and not verdict.get("equivalent"):
        print("load-gen: live decisions diverged from the simulator",
              file=sys.stderr)
        return 1
    return 0


def _build_cli_matrix(dataset: str, args: argparse.Namespace):
    """The compile/tune dataset builders (synthetic | zipf | glove)."""
    rows = args.rows if args.rows is not None else 20_000
    seed = args.seed if args.seed is not None else 0
    if dataset == "synthetic":
        from repro.data.synthetic import synthetic_embeddings

        return synthetic_embeddings(
            n_rows=rows, n_cols=args.cols, avg_nnz=args.avg_nnz,
            distribution="uniform", seed=seed,
        )
    if dataset == "zipf":
        from repro.data.synthetic import zipf_embeddings

        return zipf_embeddings(
            n_rows=rows, n_cols=args.cols, avg_nnz=args.avg_nnz, seed=seed,
        )
    if dataset == "glove":
        from repro.data.glove import sparsified_glove_embeddings

        if args.cols < 2 * args.avg_nnz:
            raise SystemExit(
                f"glove needs --cols >= 2*avg-nnz ({2 * args.avg_nnz}) so the "
                "sparse dictionary has enough atoms; got --cols "
                f"{args.cols} with --avg-nnz {args.avg_nnz}"
            )
        return sparsified_glove_embeddings(
            n_rows=rows, n_cols=args.cols, avg_nnz=args.avg_nnz, seed=seed,
        )
    raise SystemExit(
        f"unknown dataset {dataset!r}; expected 'synthetic', 'zipf' or 'glove'"
    )


def _run_compile(args: argparse.Namespace) -> int:
    from repro.core.collection import compile_collection
    from repro.hw.design import design_by_name

    if len(args.rest) != 2:
        raise SystemExit(
            "usage: repro compile <dataset> <out.npz>  "
            "(dataset: 'synthetic', 'zipf' or 'glove')"
        )
    dataset, out_path = args.rest
    started = time.perf_counter()
    matrix = _build_cli_matrix(dataset, args)
    collection = compile_collection(matrix, design_by_name(args.design))
    collection.save(out_path)
    elapsed = time.perf_counter() - started
    print(collection.describe())
    print(f"wrote {out_path}", file=sys.stderr)
    print(f"[compile completed in {elapsed:.1f}s]", file=sys.stderr)
    return 0


def _run_tune(args: argparse.Namespace) -> int:
    """Search row placements, save the tuned artifact, report the search."""
    from repro.core.collection import compile_collection
    from repro.core.tune import tune_placement
    from repro.hw.design import design_by_name

    if not (
        len(args.rest) == 2
        or (args.collection is not None and len(args.rest) == 1)
    ):
        raise SystemExit(
            "usage: repro tune <dataset> <out.npz>  "
            "(dataset: 'synthetic', 'zipf' or 'glove'), or "
            "repro tune <out.npz> --collection in.npz to re-place an "
            "existing artifact"
        )
    dataset, out_path = (
        args.rest if len(args.rest) == 2 else (None, args.rest[0])
    )
    started = time.perf_counter()
    if args.collection is not None:
        from repro.core.collection import CompiledCollection

        source = CompiledCollection.load(args.collection)
        matrix, design = source.matrix, source.design
    else:
        matrix = _build_cli_matrix(dataset, args)
        design = design_by_name(args.design)
    report = tune_placement(
        matrix,
        design,
        n_partitions=args.partitions,
        n_probes=args.n_probes,
        seed=args.seed if args.seed is not None else 0,
        anneal_iters=args.anneal_iters,
        measure=not args.no_measure,
    )
    collection = compile_collection(
        matrix,
        design,
        n_partitions=args.partitions,
        placement=report.placement,
    )
    collection.save(out_path)
    elapsed = time.perf_counter() - started

    header = (
        f"{'strategy':>20} {'model cost':>12} {'est skip':>9} "
        f"{'nnz imb':>8} {'meas skip':>10}"
    )
    lines = ["# tune — placement search", "", header]
    for c in report.candidates:
        meas = (
            f"{c.measured_skip_fraction:.3f}"
            if c.measured_skip_fraction is not None
            else "-"
        )
        lines.append(
            f"{c.strategy:>20} {c.score.cost:>12.3e} "
            f"{c.score.est_skip_fraction:>9.3f} {c.score.imbalance:>8.3f} "
            f"{meas:>10}"
        )
    payload = report.to_payload()
    lines.append("")
    lines.append(
        f"winner: {report.winner.strategy} "
        f"(skip alpha {report.skip_alpha:.3f}, "
        f"{report.n_probes} probes, seed {report.seed})"
    )
    for key in ("model_speedup_vs_uniform", "measured_speedup_vs_uniform"):
        if key in payload:
            lines.append(f"{key.replace('_', ' ')}: {payload[key]:.2f}x")
    lines.append("")
    lines.append(collection.describe())
    text = "\n".join(lines)
    print(text)
    print(f"wrote {out_path}", file=sys.stderr)
    print(f"[tune completed in {elapsed:.1f}s]", file=sys.stderr)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}", file=sys.stderr)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


def _run_ingest(args: argparse.Namespace) -> int:
    """Drive a mutation workload through a segmented collection.

    Builds (or loads) a collection, ingests a delta, applies optional
    updates/deletes, and reports the incremental-ingest cost next to a full
    ``compile_collection`` of the equivalent final matrix — the number the
    segmented layer exists to beat.  A handful of queries are checked
    bit-identical against that fresh recompile, so the run doubles as an
    end-to-end equivalence smoke.
    """
    import numpy as np

    from repro.core.collection import compile_collection
    from repro.core.segments import DEFAULT_SEAL_ROWS, SegmentedCollection
    from repro.data.synthetic import synthetic_embeddings
    from repro.hw.design import design_by_name
    from repro.utils.rng import derive_rng, sample_unit_queries

    from repro.utils.validation import check_positive_int

    seed = args.seed if args.seed is not None else 0
    seal_rows = check_positive_int(
        args.seal_rows if args.seal_rows is not None else DEFAULT_SEAL_ROWS,
        "seal_rows",
    )
    started = time.perf_counter()
    if args.collection is not None:
        collection = SegmentedCollection.load(args.collection)
        collection.seal_rows = seal_rows
    else:
        rows = args.rows if args.rows is not None else (4000 if args.quick else 20_000)
        base = synthetic_embeddings(
            n_rows=rows, n_cols=args.cols, avg_nnz=args.avg_nnz,
            distribution="uniform", seed=seed,
        )
        collection = SegmentedCollection.from_matrix(
            base, design_by_name(args.design), seal_rows=seal_rows
        )
    build_s = time.perf_counter() - started
    n_base = collection.n_live
    n_cols = collection.n_cols

    rng = derive_rng(seed + 1)
    n_delta = max(1, int(round(args.delta_frac * n_base)))
    delta = synthetic_embeddings(
        n_rows=n_delta, n_cols=n_cols, avg_nnz=args.avg_nnz,
        distribution="uniform", seed=seed + 2,
    )
    started = time.perf_counter()
    collection.ingest(delta)
    # Requested counts are capped to the live population; the report must
    # carry what actually ran, not what was asked for.
    n_updates = min(args.updates, collection.n_live)
    for key in rng.choice(collection.live_keys(), size=n_updates, replace=False):
        dense = np.zeros(n_cols)
        cols = rng.choice(n_cols, size=min(args.avg_nnz, n_cols), replace=False)
        dense[np.sort(cols)] = rng.random(len(cols))
        collection.update(int(key), dense)
    n_deletes = min(args.deletes, collection.n_live)
    if n_deletes:
        victims = rng.choice(
            collection.live_keys(), size=n_deletes, replace=False
        )
        collection.delete(victims)
    collection.seal()
    incremental_s = time.perf_counter() - started

    started = time.perf_counter()
    fresh = compile_collection(collection.matrix, collection.design)
    recompile_s = time.perf_counter() - started
    speedup = recompile_s / incremental_s if incremental_s else float("inf")

    verified = 0
    if args.verify_queries:
        from repro.core.kernels import run_segmented

        X = collection.design.quantize_query(
            sample_unit_queries(derive_rng(seed + 3), args.verify_queries, n_cols)
        )
        got = run_segmented(collection, X, top_k=10)
        want = run_segmented(
            SegmentedCollection.from_collection(fresh), X, top_k=10
        )
        for g, w in zip(got.results, want.results):
            if g.indices.tolist() != w.indices.tolist() or (
                g.values.tobytes() != w.values.tobytes()
            ):
                raise SystemExit(
                    "segmented query diverged from the fresh recompile — "
                    "this is a bug, please report it"
                )
        verified = args.verify_queries

    compact_s = None
    if args.compact:
        started = time.perf_counter()
        collection.compact()
        compact_s = time.perf_counter() - started
    if args.save:
        collection.save(args.save)

    payload = {
        "base_rows": n_base,
        "cols": n_cols,
        "design": collection.design.name,
        "delta_rows": n_delta,
        "updates": n_updates,
        "deletes": n_deletes,
        "build_s": build_s,
        "incremental_s": incremental_s,
        "recompile_s": recompile_s,
        "speedup_vs_recompile": speedup,
        "compact_s": compact_s,
        "generation": collection.generation,
        "n_segments": collection.n_segments,
        "verified_queries": verified,
    }
    lines = [
        "# ingest — incremental mutation vs full recompile",
        "",
        collection.describe(),
        "",
        f"delta: {n_delta} ingested rows ({args.delta_frac:.1%} of base), "
        f"{n_updates} updates, {n_deletes} deletes",
        f"incremental ingest+seal: {incremental_s * 1e3:.1f} ms | full "
        f"recompile: {recompile_s * 1e3:.1f} ms | speedup {speedup:.1f}x",
    ]
    if verified:
        lines.append(
            f"verified bit-identical to the fresh recompile over "
            f"{verified} queries"
        )
    if compact_s is not None:
        lines.append(f"compacted to {collection.n_segments} segment(s) in "
                     f"{compact_s * 1e3:.1f} ms")
    text = "\n".join(lines)
    print(text)
    if args.save:
        print(f"wrote {args.save}", file=sys.stderr)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}", file=sys.stderr)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


def consolidate_bench_results(results_dir: "str | Path", runs: dict) -> dict:
    """Merge per-benchmark run records with every emitted results JSON.

    ``runs`` maps ``bench_*.py`` file names to ``{"status", "seconds"}``
    records; every ``*.json`` under ``results_dir`` (except the summary
    itself) is inlined under its stem, so one file carries the whole perf
    trajectory of a commit.
    """
    results = {}
    results_dir = Path(results_dir)
    if results_dir.is_dir():
        for path in sorted(results_dir.glob("*.json")):
            if path.name == "BENCH_summary.json":
                continue
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    results[path.stem] = json.load(handle)
            except (OSError, json.JSONDecodeError) as exc:
                results[path.stem] = {"error": str(exc)}
    return {"runs": runs, "results": results}


def _run_bench_all(args: argparse.Namespace) -> int:
    """Run every ``benchmarks/bench_*.py`` emitter; consolidate the JSONs.

    Each file runs under pytest in its own interpreter (the emitters are
    test modules that also enforce speedup floors), and the consolidated
    ``BENCH_summary.json`` lands next to the per-benchmark payloads in
    ``benchmarks/results/`` so the perf trajectory is one artifact per
    commit.  ``--quick`` exports ``REPRO_BENCH_QUICK=1`` to every emitter
    — reduced problem sizes, same floors where they stay meaningful — so
    CI can regenerate the whole results directory on every run.  Exit
    code is non-zero when any benchmark fails its floor.
    """
    import repro

    bench_dir = Path(args.benchmarks_dir)
    if not bench_dir.is_dir():
        raise SystemExit(
            f"benchmarks directory {bench_dir} not found; run from the "
            "repository root or pass --benchmarks-dir"
        )
    files = sorted(bench_dir.glob("bench_*.py"))
    if args.only is not None:
        files = [f for f in files if args.only in f.name]
    env = os.environ.copy()
    src_root = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_root, env.get("PYTHONPATH")) if p
    )
    if args.quick:
        env["REPRO_BENCH_QUICK"] = "1"
    runs: dict = {}
    failed = []
    for path in files:
        started = time.perf_counter()
        try:
            proc = subprocess.run(
                [sys.executable, "-m", "pytest", str(path), "-q"],
                env=env,
                capture_output=True,
                text=True,
            )
            returncode = proc.returncode
            stdout, stderr = proc.stdout, proc.stderr
        except OSError as exc:  # interpreter missing/killed — keep going
            returncode = -1
            stdout, stderr = "", str(exc)
        elapsed = time.perf_counter() - started
        status = "passed" if returncode == 0 else "failed"
        runs[path.name] = {"status": status, "seconds": elapsed}
        print(f"[{status}] {path.name} ({elapsed:.1f}s)", file=sys.stderr)
        if returncode != 0:
            # Record the failure in the consolidated summary (script,
            # returncode, stderr tail) and keep going: one broken bench
            # must not cost the perf trajectory of every other one.
            failed.append(path.name)
            runs[path.name]["returncode"] = returncode
            runs[path.name]["stderr_tail"] = (stdout + stderr)[-2000:]
            sys.stderr.write(stdout[-2000:] + stderr[-2000:])
    results_dir = bench_dir / "results"
    results_dir.mkdir(exist_ok=True)
    summary = consolidate_bench_results(results_dir, runs)
    summary["quick"] = bool(args.quick)
    summary_path = results_dir / "BENCH_summary.json"
    with open(summary_path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
    print(json.dumps(summary["runs"], indent=2, sort_keys=True))
    print(f"wrote {summary_path}", file=sys.stderr)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
        print(f"wrote {args.output}", file=sys.stderr)
    if failed:
        print(f"FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def _make_config(args: argparse.Namespace) -> ExperimentConfig:
    if args.quick:
        config = ExperimentConfig.quick()
    elif args.paper_scale:
        config = ExperimentConfig.paper()
    else:
        config = ExperimentConfig()
    if args.seed is not None:
        config = ExperimentConfig(
            seed=args.seed,
            monte_carlo_trials=config.monte_carlo_trials,
            queries=config.queries,
            functional_rows=config.functional_rows,
        )
    if args.rows is not None:
        config = config.with_rows(args.rows)
    return config


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.quick and args.paper_scale:
        raise SystemExit("--quick and --paper-scale are mutually exclusive")
    if args.experiment == "compile":
        return _run_compile(args)
    if args.experiment == "tune":
        return _run_tune(args)
    if args.rest:
        raise SystemExit(
            f"unexpected positional arguments {args.rest}; only 'compile' "
            "and 'tune' take extra arguments"
        )
    if args.experiment == "serve-bench":
        return _run_serve_bench(args)
    if args.experiment == "serve-live":
        return _run_serve_live(args)
    if args.experiment == "load-gen":
        return _run_load_gen(args)
    if args.experiment == "ingest":
        return _run_ingest(args)
    if args.experiment == "bench-all":
        return _run_bench_all(args)
    config = _make_config(args)
    names = sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]

    blocks = []
    for name in names:
        started = time.perf_counter()
        report = ALL_EXPERIMENTS[name](config)
        elapsed = time.perf_counter() - started
        text = report.render()
        blocks.append(text)
        print(text)
        print(f"[{name} completed in {elapsed:.1f}s]\n", file=sys.stderr)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(blocks))
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
