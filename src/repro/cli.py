"""Command-line interface: regenerate any table/figure of the paper.

Usage::

    python -m repro table1            # one experiment
    python -m repro all               # everything (writes nothing)
    python -m repro all -o EXPERIMENTS_RUN.md
    python -m repro figure7 --quick   # reduced scale for a fast look
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import ALL_EXPERIMENTS, ExperimentConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce tables and figures of 'Scaling up HBM Efficiency of "
            "Top-K SpMV for Approximate Embedding Similarity on FPGAs' (DAC 2021)"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(ALL_EXPERIMENTS) + ["all"],
        help="which experiment to regenerate",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced scale (fewer trials/queries/rows) for a fast run",
    )
    parser.add_argument(
        "--paper-scale", action="store_true",
        help="the paper's evaluation scale (30 queries; slower)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the root seed"
    )
    parser.add_argument(
        "--rows", type=int, default=None,
        help="override the functional matrix row count",
    )
    parser.add_argument(
        "-o", "--output", type=str, default=None,
        help="also write the report(s) to this file",
    )
    return parser


def _make_config(args: argparse.Namespace) -> ExperimentConfig:
    if args.quick and args.paper_scale:
        raise SystemExit("--quick and --paper-scale are mutually exclusive")
    if args.quick:
        config = ExperimentConfig.quick()
    elif args.paper_scale:
        config = ExperimentConfig.paper()
    else:
        config = ExperimentConfig()
    if args.seed is not None:
        config = ExperimentConfig(
            seed=args.seed,
            monte_carlo_trials=config.monte_carlo_trials,
            queries=config.queries,
            functional_rows=config.functional_rows,
        )
    if args.rows is not None:
        config = config.with_rows(args.rows)
    return config


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    config = _make_config(args)
    names = sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]

    blocks = []
    for name in names:
        started = time.perf_counter()
        report = ALL_EXPERIMENTS[name](config)
        elapsed = time.perf_counter() - started
        text = report.render()
        blocks.append(text)
        print(text)
        print(f"[{name} completed in {elapsed:.1f}s]\n", file=sys.stderr)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(blocks))
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
